"""Message-passing simulation engines (the PeerSim stand-in).

The paper evaluates its protocols with PeerSim's cycle-based engine:
time is divided into rounds, every process gets one activation per
round, and the activation order within a round is randomized (the
paper's 50 repetitions differ exactly in that order). This package
provides:

* :class:`repro.sim.engine.RoundEngine` — the cycle/round engine with
  two delivery disciplines: ``"lockstep"`` (messages sent in round r are
  delivered in round r+1; deterministic; matches the synchronous model
  of the paper's Section 4 analysis) and ``"peersim"`` (randomized
  activation order, messages visible to processes activated later in
  the same round — PeerSim's cycle semantics, used by Section 5).
* :class:`repro.sim.async_engine.AsyncEngine` — an event-driven engine
  with per-message latencies, used to check that the protocol only
  needs the reliable channels assumed by the system model (Section 2),
  not round synchrony.
* :class:`repro.sim.flat_engine.FlatOneToOneEngine` and
  :class:`repro.sim.flat_engine.FlatPeerSimEngine` — array fast paths
  that replay the round engine's lockstep and peersim disciplines
  bit-identically (the peersim one consumes the identical RNG stream)
  over a :class:`~repro.graph.csr.CSRGraph`.
* :class:`repro.sim.flat_many_engine.FlatOneToManyEngine` — the same
  idea for the one-to-many host protocol: an exact replay of the round
  engine (both disciplines) over a
  :class:`~repro.graph.sharded.ShardedCSR` partition.
"""

from repro.sim.node import Context, Process
from repro.sim.engine import RoundEngine
from repro.sim.async_engine import AsyncEngine
from repro.sim.checkpoint import CheckpointPolicy
from repro.sim.faults import Fault, FaultPlan
from repro.sim.flat_engine import FlatOneToOneEngine, FlatPeerSimEngine
from repro.sim.flat_many_engine import FlatOneToManyEngine
from repro.sim.metrics import SimulationStats

__all__ = [
    "Process",
    "Context",
    "RoundEngine",
    "AsyncEngine",
    "CheckpointPolicy",
    "Fault",
    "FaultPlan",
    "FlatOneToOneEngine",
    "FlatOneToManyEngine",
    "FlatPeerSimEngine",
    "SimulationStats",
]
