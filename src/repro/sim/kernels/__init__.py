"""Shared flat-kernel layer with pluggable stdlib/numpy backends.

Every flat execution path in this repository — the one-to-one lockstep
and peersim engines, the sharded one-to-many engine, and the flat
h-index / Pregel baselines — reduces to the same inner loops:
``computeIndex`` over neighbour estimates (Algorithm 2), estimate
tables with the ``Δ + 1`` / +∞ sentinels, the sup-counter recompute
skip, the changed-flag cascade (Algorithm 4) and the mailbox-slot
delivery scheme. This package owns those primitives once, behind the
small :class:`~repro.sim.kernels.base.KernelBackend` protocol, with two
implementations:

* ``"stdlib"`` — :class:`~repro.sim.kernels.stdlib_backend.
  StdlibBackend`, the canonical pure-``array('q')`` loops (exactly the
  PR 1-3 hot paths, now shared). Always available, always the default.
* ``"numpy"`` — :class:`~repro.sim.kernels.numpy_backend.NumpyBackend`,
  vectorised bucket/histogram kernels. Optional: it is only imported by
  :func:`resolve_backend` after checking that numpy itself imports, so
  stdlib-only environments run the full suite unchanged.

**Backend contract.** The stdlib backend defines the semantics;
``numpy`` must be bit-identical on every observable (final coreness,
round counts, per-round and per-node message counts, Figure-5
``estimates_sent``) for every configuration that accepts it —
``tests/test_backend_equivalence.py`` asserts this across the 12-family
grid. Kernel-level pre/post-conditions live in
:mod:`repro.sim.kernels.base`.

**Engine × backend support matrix.**

===========================================  =========  =========
execution path                               stdlib     numpy
===========================================  =========  =========
``FlatOneToOneEngine`` (lockstep)            yes        yes
``FlatPeerSimEngine`` (one-to-one peersim)   yes        no [1]_
``FlatOneToManyEngine`` (both modes, all
communication policies incl. p2p_filter)     yes        yes
``hindex_iteration`` (flat baseline)         yes        yes
``run_pregel_kcore(engine="flat")``          yes        yes
``FlatDynamicKCore`` streaming maintenance
(dynamic-CSR edits + re-convergence)         yes        yes
object engines (``round`` / ``async``)       n/a [2]_   n/a [2]_
===========================================  =========  =========

.. [1] PeerSim cycle semantics deliver messages *immediately* in a
   randomized per-node activation order, so each activation observes
   the previous one's writes — an inherently sequential loop with no
   batch to vectorise. The config layer rejects the combination loudly
   rather than silently falling back.
.. [2] The object engines run ``Process`` subclasses, not kernels; a
   non-default ``backend`` on them is rejected by the config layer.

Vectorisation boundary: the numpy backend vectorises *within* a batch
(a lockstep round's frontier, one host activation's fold + cascade, a
Jacobi sweep); activation order, RNG streams and message routing stay
in the engines, byte-identical across backends.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.sim.kernels.base import KernelBackend, export_send_counts
from repro.sim.kernels.stdlib_backend import StdlibBackend

__all__ = [
    "KernelBackend",
    "StdlibBackend",
    "DEFAULT_BACKEND",
    "BACKEND_NAMES",
    "available_backends",
    "numpy_available",
    "resolve_backend",
    "export_send_counts",
]

#: The canonical backend — selected whenever no backend is named.
DEFAULT_BACKEND = "stdlib"

#: Every backend name the registry knows (available or not).
BACKEND_NAMES = ("stdlib", "numpy")

_stdlib = StdlibBackend()
_numpy: KernelBackend | None = None


def numpy_available() -> bool:
    """Whether the optional numpy backend can be constructed here."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def available_backends() -> tuple[str, ...]:
    """Backend names usable in this environment, default first."""
    if numpy_available():
        return BACKEND_NAMES
    return (DEFAULT_BACKEND,)


def resolve_backend(backend: "str | KernelBackend | None") -> KernelBackend:
    """Turn a backend name (or instance, or ``None``) into a backend.

    ``None`` means :data:`DEFAULT_BACKEND`. Raises
    :class:`~repro.errors.ConfigurationError` for unknown names, and
    for ``"numpy"`` when numpy is not importable — configuration
    errors, not import errors, so the CLI and the config layer report
    them uniformly.
    """
    if isinstance(backend, KernelBackend):
        return backend
    if backend is None:
        backend = DEFAULT_BACKEND
    if backend == "stdlib":
        return _stdlib
    if backend == "numpy":
        global _numpy
        if not numpy_available():
            raise ConfigurationError(
                "backend='numpy' requires numpy, which is not installed "
                "in this environment; install numpy or use the default "
                "backend='stdlib' (identical results, pure stdlib)"
            )
        if _numpy is None:
            from repro.sim.kernels.numpy_backend import NumpyBackend

            _numpy = NumpyBackend()
        return _numpy
    raise ConfigurationError(
        f"unknown kernel backend {backend!r}; options: {list(BACKEND_NAMES)}"
    )
