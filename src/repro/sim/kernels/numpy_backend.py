"""The optional vectorised numpy kernel backend.

Implements the :class:`~repro.sim.kernels.base.KernelBackend` contract
with whole-phase array operations instead of per-node Python loops:
bucket counting becomes a segmented sort, support seeding becomes a
``bincount``, mailbox folds become masked gathers, and the shard
cascade runs as synchronous (Jacobi) relaxation rounds of the same
monotone operator — safe because Algorithm 4's fixpoint, changed set
and exact support counters are schedule-independent (the flat
one-to-many engine's module docstring carries the argument; the
backend-equivalence suite asserts bit-identity against the stdlib
backend on every gated configuration).

The heart is :meth:`NumpyBackend.batch_compute_index`: Algorithm 2 for
many nodes at once. Per node, ``computeIndex`` needs the largest
``i <= k`` with at least ``i`` neighbour estimates ``>= i``. Clamp the
estimates to ``k``, sort them *descending within each node's segment*
(one global ``np.sort`` over ``segment * B - value`` keys — segments
occupy disjoint key blocks, so one flat sort sorts every segment), and
the answer is the largest in-segment position ``p`` with
``sorted[p] >= p + 1`` — the classic h-index-by-sorting identity,
floored at 1 to match the scalar kernel's downward scan. The
post-condition support ``#{clamped >= t}`` falls out of the same
sorted array with a segmented sum.

This module must only be imported through
:func:`repro.sim.kernels.resolve_backend`, which gates on numpy being
importable; nothing else in the package (or the engines) touches numpy,
so stdlib-only environments never pay — or need — the import.
"""

from __future__ import annotations

import numpy as np

from repro.core.compute_index import compute_index
from repro.sim.kernels.base import KernelBackend

__all__ = ["NumpyBackend"]

_I64 = np.int64


def _segments(offsets, nodes):
    """Gather indices for the concatenated CSR slices of ``nodes``.

    Returns ``(seg, idx, starts, lens)``: ``idx`` indexes the flat edge
    array so ``flat[idx]`` concatenates every node's slice, ``seg[p]``
    is the position in ``nodes`` that element ``p`` belongs to, and
    ``starts`` (length ``len(nodes) + 1``) bounds each segment.
    """
    lens = offsets[nodes + 1] - offsets[nodes]
    starts = np.zeros(len(nodes) + 1, dtype=_I64)
    np.cumsum(lens, out=starts[1:])
    total = int(starts[-1])
    seg = np.repeat(np.arange(len(nodes), dtype=_I64), lens)
    idx = offsets[nodes][seg] + (np.arange(total, dtype=_I64) - starts[seg])
    return seg, idx, starts, lens


class NumpyBackend(KernelBackend):
    """Flat kernels over ``numpy.int64`` buffers (see module doc)."""

    name = "numpy"

    # ------------------------------------------------------------------
    # tables
    # ------------------------------------------------------------------
    def full(self, n: int, fill: int = 0):
        return np.full(n, fill, dtype=_I64)

    def graph_array(self, arr):
        if isinstance(arr, np.ndarray):
            return arr
        # array('q') exposes the buffer protocol: zero-copy view
        return np.frombuffer(arr, dtype=_I64) if len(arr) else np.zeros(0, _I64)

    def degrees(self, offsets, n: int):
        offsets = self.graph_array(offsets)
        return offsets[1:] - offsets[:-1]

    def worklist_flags(self, n: int):
        return None  # dedupe happens with np.unique, no flag scratch

    # ------------------------------------------------------------------
    # Algorithm 2
    # ------------------------------------------------------------------
    def compute_index(self, estimates, k, scratch=None):
        # scalar calls stay on the canonical kernel: a handful of values
        # cannot amortise any vectorisation
        return compute_index(estimates, k, scratch)

    def _batch_core(self, seg, starts, caps_seg, vals):
        """Segmented Algorithm 2 over pre-gathered neighbour values.

        ``vals[p]`` is a neighbour estimate belonging to segment
        ``seg[p]`` with cap ``caps_seg[p]``; all segments are non-empty
        and all caps >= 1. Returns ``(t, support)`` per segment.
        """
        clamped = np.minimum(vals, caps_seg)
        # disjoint key blocks per segment; caps >= clamped >= 0
        bound = int(clamped.max()) + 2 if len(clamped) else 2
        key = seg * bound + (bound - 1 - clamped)
        key.sort()
        desc = (bound - 1) - (key - seg * bound)  # descending per segment
        pos = np.arange(len(vals), dtype=_I64) - starts[seg]
        rank = pos + 1
        t = np.maximum.reduceat(
            np.where(desc >= rank, rank, 0), starts[:-1]
        )
        # the scalar kernel's downward scan bottoms out at 1
        np.maximum(t, 1, out=t)
        support = np.add.reduceat(
            (desc >= t[seg]).astype(_I64), starts[:-1]
        )
        return t, support

    def batch_compute_index(self, nodes, caps, offsets, edge_values, scratch):
        nodes = np.asarray(nodes, dtype=_I64)
        caps = np.asarray(caps, dtype=_I64)
        offsets = self.graph_array(offsets)
        edge_values = self.graph_array(edge_values)
        values = np.zeros(len(nodes), dtype=_I64)
        supports = np.zeros(len(nodes), dtype=_I64)
        if not len(nodes):
            return values, supports
        lens = offsets[nodes + 1] - offsets[nodes]
        live = caps > 0
        # degree-0 nodes with a positive cap: the scalar kernel's scan
        # still bottoms out at 1 (support 0)
        values[live & (lens == 0)] = 1
        run = np.nonzero(live & (lens > 0))[0]
        if len(run):
            sub = nodes[run]
            seg, idx, starts, _ = _segments(offsets, sub)
            t, support = self._batch_core(
                seg, starts, caps[run][seg], edge_values[idx]
            )
            values[run] = t
            supports[run] = support
        return values, supports

    # ------------------------------------------------------------------
    # one-to-one lockstep phases
    # ------------------------------------------------------------------
    def seed_estimates(self, offsets, targets, owner, degree, est, sup, in_frontier):
        np.take(degree, targets, out=est)
        qualifying = est >= degree[owner]
        sup[:] = np.bincount(owner[qualifying], minlength=len(degree))
        return np.nonzero(sup < degree)[0]

    def fold_slots(self, slots, incoming, est, owner, core, sup, in_frontier):
        empty = np.zeros(0, dtype=_I64)
        if not len(slots):
            return empty
        vals = incoming[slots]
        old = est[slots]
        lowered = vals < old
        if not lowered.any():
            return empty
        hit = slots[lowered]
        vals = vals[lowered]
        old = old[lowered]
        est[hit] = vals  # slots are unique within a round: plain scatter
        owners = owner[hit]
        levels = core[owners]
        crossing = (old >= levels) & (vals < levels)
        starved = owners[crossing]
        np.subtract.at(sup, starved, 1)
        cand = np.unique(starved)
        return cand[sup[cand] < core[cand]]

    def process_frontier(
        self,
        frontier,
        offsets,
        targets,
        mirror,
        est,
        core,
        sup,
        incoming,
        sent,
        optimize,
        scratch,
        in_frontier,
    ):
        if not len(frontier):
            return 0, np.zeros(0, dtype=_I64)
        caps = core[frontier]
        seg, idx, starts, _ = _segments(offsets, frontier)
        vals = est[idx]
        t, support = self._batch_core(seg, starts, caps[seg], vals)
        sup[frontier] = support
        dropped = t < caps
        core[frontier[dropped]] = t[dropped]
        emitting = dropped[seg]
        if optimize:
            # the Section 3.1.2 filter: only send below the neighbour's
            # last-heard estimate (est is untouched during this phase)
            emitting &= t[seg] < vals
        slots = mirror[idx[emitting]]
        incoming[slots] = t[seg[emitting]]
        counts = np.bincount(seg[emitting], minlength=len(frontier))
        senders = counts > 0
        sent[frontier[senders]] += counts[senders]
        return int(counts.sum()), slots

    # ------------------------------------------------------------------
    # one-to-many shard phases
    # ------------------------------------------------------------------
    def seed_shard(self, offsets, targets, n_owned, n_ext, infinity, est, sup, queued):
        degree = offsets[1:] - offsets[:-1]
        est[:n_owned] = degree
        est[n_owned:] = infinity
        if len(targets):
            owner = np.repeat(np.arange(n_owned, dtype=_I64), degree)
            qualifying = est[targets] >= degree[owner]
            sup[:] = np.bincount(owner[qualifying], minlength=n_owned)
        else:
            sup[:] = 0
        return np.nonzero(sup < degree)[0]

    def cascade(
        self,
        offsets,
        targets,
        n_owned,
        est,
        sup,
        dirty,
        queued,
        changed_flag,
        changed_list,
        scratch,
    ):
        # Jacobi relaxation rounds of Algorithm 4's monotone operator:
        # recompute the whole dirty set from a snapshot, apply every
        # drop at once, then derive the next dirty set from the level
        # crossings — same fixpoint, changed set and exact sup as the
        # stdlib worklist (schedule independence).
        flags = np.frombuffer(changed_flag, dtype=np.uint8)
        while len(dirty):
            caps = est[dirty]
            seg, idx, starts, _ = _segments(offsets, dirty)
            snapshot = est[targets[idx]]
            t, support = self._batch_core(seg, starts, caps[seg], snapshot)
            sup[dirty] = support
            drop = t < caps
            du = dirty[drop]
            if not len(du):
                break
            new_levels = t[drop]
            old_levels = caps[drop]
            est[du] = new_levels
            fresh = du[flags[du] == 0]
            flags[fresh] = 1
            changed_list.extend(fresh.tolist())
            # propagate: internal neighbours whose level the drop
            # crossed lose one support each (batch formula: crossings
            # are measured against the *post-round* neighbour levels)
            seg2, idx2, _, _ = _segments(offsets, du)
            nbrs = targets[idx2]
            internal = nbrs < n_owned
            nbrs = nbrs[internal]
            cur = old_levels[seg2[internal]]
            new = new_levels[seg2[internal]]
            levels = est[nbrs]
            crossing = (cur >= levels) & (new < levels)
            starved = nbrs[crossing]
            np.subtract.at(sup, starved, 1)
            cand = np.unique(starved)
            dirty = cand[sup[cand] < est[cand]]

    def fold_mailbox(
        self, slots, vals, n_owned, est, sup, watch_offsets, watch_targets, queued
    ):
        empty = np.zeros(0, dtype=_I64)
        if not slots:
            return empty
        slots = np.asarray(slots, dtype=_I64)
        vals = np.asarray(vals, dtype=_I64)
        # min-fold duplicates first: estimates only decrease, so the
        # sequential fold's net effect per slot is the pairwise min
        uniq, inverse = np.unique(slots, return_inverse=True)
        mins = np.full(len(uniq), np.iinfo(_I64).max, dtype=_I64)
        np.minimum.at(mins, inverse, vals)
        old = est[n_owned + uniq]
        lowered = mins < old
        if not lowered.any():
            return empty
        uniq = uniq[lowered]
        new = mins[lowered]
        old = old[lowered]
        est[n_owned + uniq] = new
        seg, idx, _, _ = _segments(watch_offsets, uniq)
        watchers = watch_targets[idx]
        levels = est[watchers]  # owned estimates are untouched by folds
        crossing = (old[seg] >= levels) & (new[seg] < levels)
        starved = watchers[crossing]
        np.subtract.at(sup, starved, 1)
        cand = np.unique(starved)
        return cand[sup[cand] < est[cand]]

    # ------------------------------------------------------------------
    # dynamic-CSR edit kernels
    # ------------------------------------------------------------------
    def _mutable_view(self, arr):
        """A writable i64 view over a dynamic-CSR ``array('q')`` buffer.

        Dynamic graphs keep their storage in stdlib arrays (they grow
        with ``extend``); kernels mutate through a zero-copy view.
        """
        if isinstance(arr, np.ndarray):
            return arr
        return np.frombuffer(arr, dtype=_I64) if len(arr) else np.zeros(0, _I64)

    @staticmethod
    def _dyn_segments(starts, used, nodes):
        """Like :func:`_segments` for slack regions (``starts``/``used``)."""
        lens = used[nodes]
        seg_starts = np.zeros(len(nodes) + 1, dtype=_I64)
        np.cumsum(lens, out=seg_starts[1:])
        total = int(seg_starts[-1])
        seg = np.repeat(np.arange(len(nodes), dtype=_I64), lens)
        idx = starts[nodes][seg] + (np.arange(total, dtype=_I64) - seg_starts[seg])
        return seg, idx, seg_starts, lens

    def csr_insert_slots(self, starts, used, targets, owners, values):
        if not len(owners):
            return
        st = self._mutable_view(starts)
        us = self._mutable_view(used)
        tg = self._mutable_view(targets)
        own = self._mutable_view(owners)
        vals = self._mutable_view(values)
        # stable sort keeps batch order within each owner, so repeated
        # owners fill consecutive slots exactly like the stdlib loop
        order = np.argsort(own, kind="stable")
        so = own[order]
        group_first = np.concatenate(
            ([0], np.nonzero(np.diff(so))[0] + 1)
        ).astype(_I64)
        group_lens = np.diff(np.concatenate((group_first, [len(so)])))
        rank = np.arange(len(so), dtype=_I64) - np.repeat(group_first, group_lens)
        tg[st[so] + us[so] + rank] = vals[order]
        np.add.at(us, own, 1)

    def csr_delete_slots(self, starts, used, targets, owners, values):
        if not len(owners):
            return
        st = self._mutable_view(starts)
        us = self._mutable_view(used)
        tg = self._mutable_view(targets)
        own = self._mutable_view(owners)
        vals = self._mutable_view(values)
        seg, idx, seg_starts, _ = self._dyn_segments(st, us, own)
        match = tg[idx] == vals[seg]
        # first (== only) live slot per pair; the caller guarantees a
        # match exists, so the sentinel never survives the reduce
        pos = np.where(match, idx, np.iinfo(_I64).max)
        first = np.minimum.reduceat(pos, seg_starts[:-1])
        tg[first] = -1

    def reconverge_from_bounds(self, starts, used, targets, est, frontier,
                               scratch):
        st = self._mutable_view(starts)
        us = self._mutable_view(used)
        tg = self._mutable_view(targets)
        est_v = self._mutable_view(est)
        changed_flag = np.zeros(len(us), dtype=np.uint8)
        changed: list[int] = []
        work = np.asarray(frontier, dtype=_I64)
        work = work[est_v[work] > 0]
        rounds = 0
        while len(work):
            rounds += 1
            caps = est_v[work]
            seg, idx, _, _ = self._dyn_segments(st, us, work)
            tv = tg[idx]
            live = tv >= 0
            seg_l = seg[live]
            vals = est_v[tv[live]]
            live_lens = np.bincount(seg_l, minlength=len(work))
            new = np.zeros(len(work), dtype=_I64)
            run = np.nonzero(live_lens > 0)[0]
            if len(run):
                run_lens = live_lens[run]
                run_starts = np.zeros(len(run) + 1, dtype=_I64)
                np.cumsum(run_lens, out=run_starts[1:])
                seg2 = np.repeat(np.arange(len(run), dtype=_I64), run_lens)
                # vals is grouped by ascending segment and empty
                # segments contribute nothing, so it is already the
                # concatenation over the run subset
                t, _ = self._batch_core(
                    seg2, run_starts, caps[run][seg2], vals
                )
                new[run] = t
            drop = new < caps
            du = work[drop]
            if not len(du):
                break
            est_v[du] = new[drop]
            fresh = du[changed_flag[du] == 0]
            changed_flag[fresh] = 1
            changed.extend(fresh.tolist())
            seg3, idx3, _, _ = self._dyn_segments(st, us, du)
            nbrs = tg[idx3]
            nbrs = nbrs[nbrs >= 0]
            cand = np.unique(nbrs)
            work = cand[est_v[cand] > 0]
        return sorted(changed), rounds

    # ------------------------------------------------------------------
    # shared-memory transport primitives
    # ------------------------------------------------------------------
    def shm_view(self, buf, n: int):
        return np.ndarray((n,), dtype=_I64, buffer=buf)

    def shm_write_i64(self, view, start: int, values) -> None:
        view[start:start + len(values)] = np.asarray(values, dtype=_I64)

    def shm_read_i64(self, view, start: int, count: int):
        # .tolist() yields builtin ints — the bit-identical-payload
        # contract of the backend protocol
        return view[start:start + count].tolist()

    # ------------------------------------------------------------------
    # bulk-synchronous sweeps
    # ------------------------------------------------------------------
    def hindex_sweep(self, offsets, targets, values, scratch):
        n = len(values)
        out = np.zeros(n, dtype=_I64)
        if len(targets):
            # degree-0 nodes stay 0; so do nodes already at value 0
            # (computeIndex returns 0 whenever its cap is <= 0)
            nodes = np.nonzero(
                ((offsets[1:] - offsets[:-1]) > 0) & (values > 0)
            )[0]
            seg, idx, starts, _ = _segments(offsets, nodes)
            t, _ = self._batch_core(
                seg, starts, values[nodes][seg], values[targets[idx]]
            )
            out[nodes] = t
        changed = bool((out != values).any())
        return changed, out

    def count_intra(self, slots, owner, targets, worker_of):
        if slots is None:
            return int(
                (worker_of[owner] == worker_of[targets]).sum()
            )
        if not len(slots):
            return 0
        return int(
            (worker_of[owner[slots]] == worker_of[targets[slots]]).sum()
        )

    def count_distinct_owners(self, slots, owner, n):
        if slots is None:
            return int(len(np.unique(owner)))
        if not len(slots):
            return 0
        return int(len(np.unique(owner[slots])))
