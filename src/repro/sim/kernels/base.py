"""The kernel-backend contract shared by every flat engine.

A :class:`KernelBackend` owns the hot-path primitives that used to be
re-implemented privately inside each flat engine: integer-table
allocation, the round-2 estimate seeding, the mailbox-slot fold with
the sup-counter recompute skip, frontier recomputation + send emission
(Algorithm 1's periodic block), the shard-local cascade (Algorithm 4)
with its changed-flag bookkeeping, batched ``computeIndex`` (Algorithm
2), and the bulk-synchronous h-index sweep. Engines orchestrate rounds
and messages; backends execute the per-round array work.

**The contract.** Every kernel is defined by the canonical stdlib
implementation (:class:`~repro.sim.kernels.stdlib_backend.
StdlibBackend` — the loops extracted verbatim from the PR 1-3 engines).
An alternative backend must be *bit-identical on every observable*: the
post-call contents of the ``est`` / ``core`` / ``sup`` / ``incoming`` /
``sent`` arrays and flag buffers it touches, the *set* of frontier /
dirty / changed nodes and emitted mailbox slots, and every returned
count. Only container types (``array('q')`` vs ``numpy.ndarray``) and
the *order* of returned node/slot collections may differ — engines must
not depend on that order, which is safe because every phase is
order-independent within itself (folds are min-folds, the cascade
converges to a unique fixpoint from any schedule, and frontier
recomputes touch disjoint per-node state).

**Array kinds.** Backends deal in two kinds of flat i64 buffers:

* *graph arrays* — the immutable CSR/shard structure (``offsets``,
  ``targets``, ``mirror``, edge owners, watcher tables). Engines adopt
  them once per run through :meth:`KernelBackend.graph_array`, which
  may return a zero-copy view in the backend's native container.
* *state tables* — ``est`` / ``core`` / ``sup`` / ``incoming`` /
  ``sent`` and friends, allocated by :meth:`KernelBackend.full` in the
  backend's native container. Engines only ever index, slice-assign,
  and hand them back to kernels, so either container works above.

Scratch conventions: ``scratch`` is the caller-owned ``computeIndex``
bucket list (ignored by vectorised backends); ``in_frontier`` /
``queued`` are caller-owned dedupe flag buffers that must be all-zero
between rounds — backends that do not need them accept and ignore them
(:meth:`KernelBackend.worklist_flags` returns ``None`` for those).
"""

from __future__ import annotations

from typing import Any, Iterable, Protocol, Sequence, runtime_checkable

__all__ = ["KernelBackend", "Table", "export_send_counts"]

#: A flat i64 buffer in a backend's native container — ``array('q')``
#: for stdlib, ``numpy.ndarray`` for numpy. Deliberately ``Any``: the
#: two containers share only the structural index/slice/len surface the
#: engines use, and pinning either nominal type here would force the
#: other backend to lie.
Table = Any

#: A worklist/slot collection returned by one backend and fed back into
#: the same backend next phase (list, array, or ndarray — engines must
#: not depend on its order, per the module docstring).
Worklist = Any


def export_send_counts(stats, sent: Sequence[int], ids=None) -> None:
    """Fold flat per-process send counters into a stats object.

    The one shared stats-export helper for all flat engines (previously
    copy-pasted as ``_export_messages`` in both engine modules):
    ``sent[i]`` messages are attributed to process ``ids[i]`` (or to
    ``i`` itself when ``ids`` is ``None`` — host pids are already
    ``0..H-1``). Zero counters stay out of ``sent_per_process``,
    matching the object engines, and values are coerced to builtin
    ``int`` so numpy-backed runs export the same payload types.
    """
    per_process = stats.sent_per_process
    total = 0
    if ids is None:
        for i, count in enumerate(sent):
            if count:
                per_process[i] = int(count)
                total += count
    else:
        for i, count in enumerate(sent):
            if count:
                per_process[ids[i]] = int(count)
                total += count
    stats.total_messages = int(total)


@runtime_checkable
class KernelBackend(Protocol):
    """The flat-kernel backend protocol; see the module docstring.

    A real :class:`typing.Protocol`: mypy checks the concrete backends
    *structurally* against this surface (method names, arities, keyword
    names), and replay-lint's RPL003 enforces the same parity
    syntactically on environments without mypy. Concrete backends —
    :class:`~repro.sim.kernels.stdlib_backend.StdlibBackend`
    (canonical) and :class:`~repro.sim.kernels.numpy_backend.
    NumpyBackend` (vectorised, optional) — subclass it explicitly,
    inheriting the raising default bodies so a missing kernel fails
    loudly rather than silently returning ``None``. The protocol class
    itself cannot be instantiated (``TypeError``), and
    ``runtime_checkable`` keeps the registry's ``isinstance`` pass-
    through working for any structurally-conforming object. The
    engine×backend support matrix lives in :mod:`repro.sim.kernels`.
    """

    #: Registry name ("stdlib" / "numpy").
    name: str = "abstract"

    # ------------------------------------------------------------------
    # tables
    # ------------------------------------------------------------------
    def full(self, n: int, fill: int = 0) -> Table:
        """A length-``n`` i64 state table filled with ``fill``."""
        raise NotImplementedError

    def graph_array(self, arr: Table) -> Table:
        """Adopt an immutable CSR/shard ``array('q')`` buffer.

        May return a zero-copy view; the engine promises not to mutate
        the result.
        """
        raise NotImplementedError

    def degrees(self, offsets: Table, n: int) -> Table:
        """Per-node degree table ``offsets[i + 1] - offsets[i]``."""
        raise NotImplementedError

    def worklist_flags(self, n: int) -> bytearray | None:
        """Dedupe flag buffer for the shard cascade worklist.

        ``None`` when the backend needs no such scratch (vectorised
        cascades dedupe with array ops).
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Algorithm 2
    # ------------------------------------------------------------------
    def compute_index(
        self, estimates: Iterable[int], k: int, scratch: list | None = None
    ) -> int:
        """Scalar ``computeIndex`` (delegates to the canonical kernel)."""
        raise NotImplementedError

    def batch_compute_index(
        self,
        nodes: Sequence[int],
        caps: Sequence[int],
        offsets: Sequence[int],
        edge_values: Table,
        scratch: list | None,
    ) -> tuple[Table, Table]:
        """Algorithm 2 over many nodes at once.

        For each position ``p``: run ``computeIndex`` for node
        ``nodes[p]`` with upper bound ``caps[p]`` over the neighbour
        estimates ``edge_values[offsets[v]:offsets[v + 1]]``. Returns
        ``(values, supports)`` aligned with ``nodes``, where
        ``supports[p]`` is the post-condition suffix count
        ``#{estimates clamped to caps[p] that are >= values[p]}`` (the
        flat engines' ``sup``). Nodes with ``caps <= 0`` yield
        ``(0, 0)``, matching the scalar kernel.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # one-to-one lockstep phases (Algorithm 1 over a CSRGraph)
    # ------------------------------------------------------------------
    def seed_estimates(
        self,
        offsets: Table,
        targets: Table,
        owner: Table,
        degree: Table,
        est: Table,
        sup: Table,
        in_frontier: bytearray | None,
    ) -> Worklist:
        """Round-2 delivery: every slot carries its sender's degree.

        Fills ``est[e] = degree[targets[e]]``, seeds the support
        counters ``sup[v] = #{e in v's slice: est[e] >= degree[v]}``
        and returns the initial frontier — the nodes with
        ``sup < degree`` (flagged in ``in_frontier`` by backends that
        use it).
        """
        raise NotImplementedError

    def fold_slots(
        self,
        slots: Worklist,
        incoming: Table,
        est: Table,
        owner: Table,
        core: Table,
        sup: Table,
        in_frontier: bytearray | None,
    ) -> Worklist:
        """Fold one round of mailbox slots into the estimate table.

        For each delivered slot, record ``incoming[slot]`` into
        ``est[slot]`` when smaller; a delivery that drops a slot's
        estimate across its owner's ``core`` level decrements the
        owner's ``sup``, and owners starved below ``core`` form the
        returned frontier (each node at most once). ``slots`` is
        whatever container the same backend's :meth:`process_frontier`
        returned last round.
        """
        raise NotImplementedError

    def process_frontier(
        self,
        frontier,
        offsets,
        targets,
        mirror,
        est,
        core,
        sup,
        incoming,
        sent,
        optimize: bool,
        scratch,
        in_frontier,
    ):
        """Recompute every frontier node and emit its sends.

        Runs ``computeIndex`` per frontier node (refreshing ``sup``
        from the suffix count), lowers ``core`` on drops, and for each
        dropped node writes the new estimate into the mirror slot of
        every retained edge (the Section 3.1.2 filter suppresses edges
        with ``est <= new core`` when ``optimize``), bumping ``sent``.
        Returns ``(sends, slots)`` — the emitted message count and the
        written slots, to be folded next round by :meth:`fold_slots`.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # one-to-many shard phases (Algorithms 3-5 over a HostShard)
    # ------------------------------------------------------------------
    def seed_shard(
        self,
        offsets: Table,
        targets: Table,
        n_owned: int,
        n_ext: int,
        infinity: int,
        est: Table,
        sup: Table,
        queued: bytearray | None,
    ) -> Worklist:
        """Algorithm 3 initialisation for one shard.

        Owned estimates start at their degree, external ones at
        ``infinity``; seeds ``sup`` like :meth:`seed_estimates` and
        returns the initial dirty worklist (owned nodes with
        ``sup < est``) for :meth:`cascade`.
        """
        raise NotImplementedError

    def cascade(
        self,
        offsets,
        targets,
        n_owned,
        est,
        sup,
        dirty,
        queued,
        changed_flag,
        changed_list,
        scratch,
    ) -> None:
        """Algorithm 4 — run the internal cascade to its fixpoint.

        ``dirty`` is the container the same backend's
        :meth:`seed_shard` / :meth:`fold_mailbox` returned. Every
        dropped owned node is flagged once in ``changed_flag`` and
        appended (as a builtin ``int``) to ``changed_list``; ``sup`` is
        maintained exactly (recomputed nodes re-read it from the suffix
        count, neighbours of dropped nodes are decremented per level
        crossing). The fixpoint, the changed set and the final ``sup``
        are schedule-independent, so worklist and batched
        implementations agree bit-for-bit.
        """
        raise NotImplementedError

    def fold_mailbox(
        self, slots, vals, n_owned, est, sup, watch_offsets, watch_targets, queued
    ):
        """Fold received ``(ext-slot, value)`` pairs into a shard.

        ``slots`` / ``vals`` are parallel builtin lists (the engine's
        mailbox buffers). Min-folds each external slot, decrements the
        support of watchers whose level the drop crosses, and returns
        the dirty worklist (watchers starved below their estimate) for
        :meth:`cascade`.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # dynamic-CSR edit kernels (streaming maintenance)
    # ------------------------------------------------------------------
    def csr_insert_slots(
        self, starts: Table, used: Table, targets: Table, owners, values
    ) -> None:
        """Append a batch of edge slots to a dynamic CSR.

        For each position ``i`` *in batch order*: write ``values[i]``
        into the next free slot of ``owners[i]``'s region
        (``targets[starts[o] + used[o]]``) and bump ``used[o]``. The
        caller (:class:`~repro.graph.dynamic_csr.DynamicCSRGraph`) has
        already validated the batch and reserved capacity. Batch order
        is part of the contract: backends must produce identical slot
        layouts (repeated owners fill consecutive slots in batch
        order), which the kernel tests assert buffer-for-buffer.
        """
        raise NotImplementedError

    def csr_delete_slots(
        self, starts: Table, used: Table, targets: Table, owners, values
    ) -> None:
        """Tombstone a batch of edge slots in a dynamic CSR.

        For each position ``i``: find the slot holding ``values[i]``
        in ``owners[i]``'s used region and overwrite it with the
        tombstone sentinel (``-1``). The caller guarantees every pair
        is present and no ``(owner, value)`` pair repeats, so each
        position hits exactly one live slot; ``used`` is untouched
        (tombstones keep their slot until compaction).
        """
        raise NotImplementedError

    def reconverge_from_bounds(
        self,
        starts: Table,
        used: Table,
        targets: Table,
        est: Table,
        frontier: Sequence[int],
        scratch: list | None,
    ) -> tuple[list, int]:
        """Warm-start re-convergence of the locality operator.

        ``est`` holds a pointwise *upper bound* of the true coreness
        over a dynamic CSR (tombstoned ``targets`` slots are skipped);
        iterate ``computeIndex`` to the greatest fixpoint below it —
        which is the coreness, because iterating from any upper bound
        is monotone non-increasing and cannot cross a fixpoint (the
        ``streaming.maintenance`` module docstring carries the full
        argument). Runs as synchronous (Jacobi) rounds so the round
        count is schedule-independent: each round recomputes the whole
        frontier from a snapshot of ``est``, applies every drop at
        once, then the next frontier is the live neighbours of the
        dropped rows. Rows with ``est <= 0`` are skipped (they cannot
        drop); rows with no live slots drop to 0.

        Returns ``(changed, rounds)``: the ascending list of rows
        whose estimate dropped (builtin ints) and the number of rounds
        executed — both bit-identical across backends.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # shared-memory transport primitives (mp engine, transport="shm")
    # ------------------------------------------------------------------
    def shm_view(self, buf, n: int) -> Table:
        """An i64 view of the first ``n`` words of a shared buffer.

        ``buf`` is a ``multiprocessing.shared_memory`` block's ``buf``
        memoryview; the result is the backend's native zero-copy window
        over it (``memoryview.cast("q")`` / ``np.ndarray(buffer=...)``)
        for :meth:`shm_write_i64` / :meth:`shm_read_i64`. The view
        borrows the mapping — callers keep the segment object alive for
        the view's lifetime and never close it underneath.
        """
        raise NotImplementedError

    def shm_write_i64(self, view: Table, start: int, values) -> None:
        """Write ``values`` (a builtin int sequence) at ``view[start:]``.

        One block write on either backend — this is the whole sender
        side of the shm hot path, replacing the queue transport's
        per-batch pickling.
        """
        raise NotImplementedError

    def shm_read_i64(self, view: Table, start: int, count: int) -> list[int]:
        """Read ``count`` words at ``view[start:]`` as builtin ``int``\\ s.

        Builtin ints by contract: the result feeds the same
        :meth:`fold_mailbox` path as an unpickled queue batch, and the
        bit-identical replay requires identical payload types.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # bulk-synchronous sweeps (h-index / Pregel baselines)
    # ------------------------------------------------------------------
    def hindex_sweep(
        self, offsets: Table, targets: Table, values: Table, scratch: list | None
    ) -> tuple[Any, Table]:
        """One synchronous (Jacobi) h-index sweep over all nodes.

        Every node's next value is ``computeIndex`` over its
        neighbours' *previous* values (isolated nodes stay 0). Returns
        ``(changed, next_values)``; ``values`` itself is not mutated.
        """
        raise NotImplementedError

    def count_intra(
        self, slots: Worklist, owner: Table, targets: Table, worker_of: Table
    ) -> int:
        """How many of the given mailbox slots stay inside one worker.

        A slot's message travels ``targets[slot] -> owner[slot]``;
        counts those with equal ``worker_of`` at both ends. ``slots`` is
        a container produced by the same backend (or ``None`` for "every
        slot", the superstep-0 broadcast). Used by the flat Pregel port
        for its inter-/intra-worker traffic split.
        """
        raise NotImplementedError

    def count_distinct_owners(self, slots: Worklist, owner: Table, n: int) -> int:
        """How many distinct receivers the given mailbox slots address.

        ``owner[slot]`` is the node a slot delivers to; counts the
        distinct owners over ``slots`` (a container produced by the same
        backend, or ``None`` for "every slot" — the superstep-0
        broadcast). Used by the flat Pregel port to reproduce the BSP
        master's per-superstep active-vertex count: a Pregel vertex is
        active in superstep ``S`` exactly when a message sent in ``S-1``
        addresses it (every vertex votes to halt each superstep).
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<KernelBackend {self.name}>"
