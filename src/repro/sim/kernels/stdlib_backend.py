"""The canonical pure-stdlib kernel backend.

These are the PR 1-3 hot loops, extracted verbatim from
``sim/flat_engine.py`` and ``sim/flat_many_engine.py`` so that every
flat engine (and the flat h-index / Pregel baselines) shares one copy.
This backend *defines* the kernel contract of
:mod:`repro.sim.kernels.base`: alternative backends are validated
against it bit-for-bit. It needs nothing beyond ``array`` and
``collections`` and is always available — the default everywhere.
"""

from __future__ import annotations

from array import array
from collections import deque

from repro.core.compute_index import compute_index
from repro.sim.kernels.base import KernelBackend

__all__ = ["StdlibBackend"]


class StdlibBackend(KernelBackend):
    """Flat kernels over stdlib ``array('q')`` buffers (see module doc)."""

    name = "stdlib"

    # ------------------------------------------------------------------
    # tables
    # ------------------------------------------------------------------
    def full(self, n: int, fill: int = 0):
        return array("q", [fill]) * n

    def graph_array(self, arr):
        return arr

    def degrees(self, offsets, n: int):
        deg = array("q", [0]) * n
        for i in range(n):
            deg[i] = offsets[i + 1] - offsets[i]
        return deg

    def worklist_flags(self, n: int):
        return bytearray(n)

    # ------------------------------------------------------------------
    # Algorithm 2
    # ------------------------------------------------------------------
    def compute_index(self, estimates, k, scratch=None):
        return compute_index(estimates, k, scratch)

    def batch_compute_index(self, nodes, caps, offsets, edge_values, scratch):
        if scratch is None:
            scratch = []
        values = array("q", [0]) * len(nodes)
        supports = array("q", [0]) * len(nodes)
        view = memoryview(edge_values) if len(edge_values) else edge_values
        for p, v in enumerate(nodes):
            k = caps[p]
            if k <= 0:
                continue
            t = compute_index(view[offsets[v]:offsets[v + 1]], k, scratch)
            values[p] = t
            supports[p] = scratch[t]
        return values, supports

    # ------------------------------------------------------------------
    # one-to-one lockstep phases
    # ------------------------------------------------------------------
    def seed_estimates(self, offsets, targets, owner, degree, est, sup, in_frontier):
        frontier = []
        push = frontier.append
        for v in range(len(degree)):
            lo = offsets[v]
            hi = offsets[v + 1]
            k = hi - lo
            s = 0
            for e in range(lo, hi):
                d = degree[targets[e]]
                est[e] = d
                if d >= k:
                    s += 1
            sup[v] = s
            if s < k:
                in_frontier[v] = 1
                push(v)
        return frontier

    def fold_slots(self, slots, incoming, est, owner, core, sup, in_frontier):
        # only deliveries that push a node's support below its core need
        # a recompute — every other message is a single array write
        frontier = []
        push = frontier.append
        for slot in slots:
            value = incoming[slot]
            old = est[slot]
            if value < old:
                est[slot] = value
                v = owner[slot]
                k = core[v]
                if old >= k and value < k:
                    s = sup[v] - 1
                    sup[v] = s
                    if s < k and not in_frontier[v]:
                        in_frontier[v] = 1
                        push(v)
        return frontier

    def process_frontier(
        self,
        frontier,
        offsets,
        targets,
        mirror,
        est,
        core,
        sup,
        incoming,
        sent,
        optimize,
        scratch,
        in_frontier,
    ):
        est_view = memoryview(est) if len(est) else est
        _compute_index = compute_index
        sends = 0
        slots_next: list[int] = []
        emit = slots_next.append
        for v in frontier:
            in_frontier[v] = 0
            lo = offsets[v]
            hi = offsets[v + 1]
            k = core[v]
            t = _compute_index(est_view[lo:hi], k, scratch)
            # scratch is the suffix-summed bucket array of that call:
            # scratch[t] == #{slots with est >= t}, the fresh support
            sup[v] = scratch[t]
            if t < k:
                core[v] = t
                count = 0
                for e in range(lo, hi):
                    if optimize and t >= est[e]:
                        continue
                    slot = mirror[e]
                    incoming[slot] = t
                    emit(slot)
                    count += 1
                if count:
                    sent[v] += count
                    sends += count
        return sends, slots_next

    # ------------------------------------------------------------------
    # one-to-many shard phases
    # ------------------------------------------------------------------
    def seed_shard(self, offsets, targets, n_owned, n_ext, infinity, est, sup, queued):
        for u in range(n_owned):
            est[u] = offsets[u + 1] - offsets[u]
        for s in range(n_ext):
            est[n_owned + s] = infinity
        # seed supports: neighbours start at their degree (internal) or
        # +inf (external); only nodes already under-supported at their
        # own degree can drop in the initial cascade
        dirty: deque[int] = deque()
        for u in range(n_owned):
            lo = offsets[u]
            hi = offsets[u + 1]
            k = hi - lo
            s = 0
            for t in targets[lo:hi]:
                if est[t] >= k:
                    s += 1
            sup[u] = s
            if s < k:
                queued[u] = 1
                dirty.append(u)
        return dirty

    def cascade(
        self,
        offsets,
        targets,
        n_owned,
        est,
        sup,
        dirty,
        queued,
        changed_flag,
        changed_list,
        scratch,
    ):
        # Algorithm 4 as a worklist: every queued node has sup < est, so
        # every pop genuinely recomputes; a drop at u propagates to
        # internal neighbours by adjusting their sup for the crossing
        # and enqueueing only those pushed under their own estimate.
        _compute_index = compute_index
        queue = dirty
        while queue:
            u = queue.popleft()
            queued[u] = 0
            cur = est[u]
            nbrs = targets[offsets[u]:offsets[u + 1]]
            k = _compute_index([est[t] for t in nbrs], cur, scratch)
            # scratch[k] is the suffix count #{est >= k}: the refreshed
            # support (compute_index's post-condition)
            sup[u] = scratch[k]
            if k < cur:
                est[u] = k
                if not changed_flag[u]:
                    changed_flag[u] = 1
                    changed_list.append(u)
                for t in nbrs:
                    if t < n_owned:
                        level = est[t]
                        if cur >= level and k < level:
                            s = sup[t] - 1
                            sup[t] = s
                            if s < level and not queued[t]:
                                queued[t] = 1
                                queue.append(t)

    def fold_mailbox(
        self, slots, vals, n_owned, est, sup, watch_offsets, watch_targets, queued
    ):
        dirty: deque[int] = deque()
        for s, value in zip(slots, vals):
            pos = n_owned + s
            old = est[pos]
            if value < old:
                est[pos] = value
                # a watcher needs a recompute only when the drop crosses
                # its level and starves its support
                for u in watch_targets[watch_offsets[s]:watch_offsets[s + 1]]:
                    level = est[u]
                    if old >= level and value < level:
                        c = sup[u] - 1
                        sup[u] = c
                        if c < level and not queued[u]:
                            queued[u] = 1
                            dirty.append(u)
        return dirty

    # ------------------------------------------------------------------
    # dynamic-CSR edit kernels
    # ------------------------------------------------------------------
    def csr_insert_slots(self, starts, used, targets, owners, values):
        for i in range(len(owners)):
            o = owners[i]
            targets[starts[o] + used[o]] = values[i]
            used[o] += 1

    def csr_delete_slots(self, starts, used, targets, owners, values):
        for i in range(len(owners)):
            o = owners[i]
            v = values[i]
            s = starts[o]
            for slot in range(s, s + used[o]):
                if targets[slot] == v:
                    targets[slot] = -1
                    break

    def reconverge_from_bounds(self, starts, used, targets, est, frontier,
                               scratch):
        # synchronous (Jacobi) rounds so the round count matches the
        # vectorised backend: recompute the whole frontier from the
        # current est snapshot, apply the drops together, then the next
        # frontier is the live neighbourhood of the dropped rows
        _compute_index = compute_index
        changed_flag = bytearray(len(used))
        changed: list[int] = []
        work = [u for u in frontier if est[u] > 0]
        rounds = 0
        while work:
            rounds += 1
            drops: list[tuple[int, int]] = []
            for u in work:
                s = starts[u]
                vals = [est[t] for t in targets[s:s + used[u]] if t >= 0]
                k = _compute_index(vals, est[u], scratch) if vals else 0
                if k < est[u]:
                    drops.append((u, k))
            if not drops:
                break
            nxt: set[int] = set()
            for u, k in drops:
                est[u] = k
                if not changed_flag[u]:
                    changed_flag[u] = 1
                    changed.append(u)
            for u, _ in drops:
                s = starts[u]
                for t in targets[s:s + used[u]]:
                    if t >= 0 and est[t] > 0:
                        nxt.add(t)
            work = sorted(nxt)
        return sorted(changed), rounds

    # ------------------------------------------------------------------
    # shared-memory transport primitives
    # ------------------------------------------------------------------
    def shm_view(self, buf, n: int):
        return memoryview(buf).cast("q")[:n]

    def shm_write_i64(self, view, start: int, values) -> None:
        # one buffer-protocol block copy; matches the view's "q" format
        view[start:start + len(values)] = array("q", values)

    def shm_read_i64(self, view, start: int, count: int):
        return view[start:start + count].tolist()

    # ------------------------------------------------------------------
    # bulk-synchronous sweeps
    # ------------------------------------------------------------------
    def hindex_sweep(self, offsets, targets, values, scratch):
        _compute_index = compute_index
        n = len(values)
        out = array("q", [0]) * n
        changed = False
        for u in range(n):
            lo = offsets[u]
            hi = offsets[u + 1]
            if hi > lo:
                # isolated nodes have coreness 0; computeIndex's scan
                # bottoms out at 1, which is only right for degree >= 1
                new = _compute_index(
                    (values[targets[e]] for e in range(lo, hi)),
                    values[u],
                    scratch,
                )
            else:
                new = 0
            out[u] = new
            if new != values[u]:
                changed = True
        return changed, out

    def count_intra(self, slots, owner, targets, worker_of):
        if slots is None:
            slots = range(len(targets))
        count = 0
        for slot in slots:
            if worker_of[owner[slot]] == worker_of[targets[slot]]:
                count += 1
        return count

    def count_distinct_owners(self, slots, owner, n):
        if slots is None:
            slots = range(len(owner))
        seen = bytearray(n)
        count = 0
        for slot in slots:
            u = owner[slot]
            if not seen[u]:
                seen[u] = 1
                count += 1
        return count
