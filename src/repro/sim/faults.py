"""Deterministic fault injection for the multi-process engine.

Recovery code that is only exercised by real hardware failures is
recovery code that has never run. This module lets a test (or a
benchmark) script the failures instead: a :class:`FaultPlan` is a list
of :class:`Fault` specs — *kill worker w at round r*, *drop one batch*,
*delay one batch*, *run slow once* — that
:class:`~repro.sim.mp_engine.MultiProcessOneToManyEngine` threads into
each worker's command loop. Every fault fires at a fixed, well-defined
point of the lockstep protocol, so the recovery paths run
deterministically in CI rather than hoped-for in production.

The four kinds, and what each one exercises:

``kill``
    The worker calls ``os._exit`` during round ``round`` — either on
    receiving the round command, before touching its mail
    (``when="start"``), or after it has folded, cascaded and emitted
    its outgoing batches but before reporting (``when="after_emit"``,
    the partial-progress case: other workers already hold this round's
    output, so recovery must deduplicate the replayed re-sends).
    Detected by the coordinator as a closed control pipe; recovered by
    respawn + replay.

``drop_batch``
    The batch this worker emits *during* round ``round`` toward worker
    ``dest`` is silently never enqueued (it still enters the sender's
    resend buffer — the fault models a lossy transport, not a buggy
    sender). The receiver blocks waiting for mail that never comes,
    the coordinator's reply timeout fires, and recovery replays the
    buffered batch — the lost-message path.

``delay_batch``
    Same addressing, but the enqueue happens after ``seconds`` of
    sleep. The round-tagged mailbox protocol must absorb this without
    any recovery (a slow channel is not a failure).

``slow``
    The worker sleeps ``seconds`` before reporting at round ``round``.
    Below the reply timeout nothing may happen; above it the failure
    detector must treat the straggler as wedged and recover it.

Kill points sit *between* queue operations, never inside one: a POSIX
kill inside ``Queue.put`` could corrupt the queue's shared lock, which
is a documented out-of-scope failure (see docs/architecture.md,
"Failure model and recovery").
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import ConfigurationError

__all__ = ["Fault", "FaultPlan", "WorkerFaults", "KILL_EXIT_CODE"]

_KINDS = ("kill", "drop_batch", "delay_batch", "slow")
_KILL_WHEN = ("start", "after_emit")

#: Exit status a fault-injected kill reports — distinct from 0 (clean)
#: and 1 (Python exception) so a recovery test can tell an injected
#: crash from an accidental one.
KILL_EXIT_CODE = 43


@dataclass(frozen=True)
class Fault:
    """One scripted failure (see the module docstring for semantics).

    Build via the classmethods — they validate per-kind fields so a
    malformed plan fails at construction, in the parent process, not
    as a hang inside a worker.
    """

    kind: str
    worker: int
    round: int
    when: str = "start"
    dest: int | None = None
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; options: {list(_KINDS)}"
            )
        if self.worker < 0:
            raise ConfigurationError(
                f"fault worker must be >= 0, got {self.worker}"
            )
        if self.round < 1:
            raise ConfigurationError(
                f"fault round must be >= 1 (rounds are 1-based), "
                f"got {self.round}"
            )
        if self.kind == "kill" and self.when not in _KILL_WHEN:
            raise ConfigurationError(
                f"unknown kill point {self.when!r}; "
                f"options: {list(_KILL_WHEN)}"
            )
        if self.kind in ("drop_batch", "delay_batch"):
            if self.dest is None or self.dest < 0:
                raise ConfigurationError(
                    f"{self.kind} needs a destination worker, "
                    f"got dest={self.dest!r}"
                )
            if self.dest == self.worker:
                raise ConfigurationError(
                    "a shard never sends to itself; "
                    f"dest={self.dest} == worker={self.worker}"
                )
        if self.kind in ("delay_batch", "slow") and self.seconds <= 0:
            raise ConfigurationError(
                f"{self.kind} needs seconds > 0, got {self.seconds!r}"
            )

    # -- constructors ---------------------------------------------------
    @classmethod
    def kill(cls, worker: int, round: int, when: str = "start") -> "Fault":
        """Kill ``worker`` during round ``round`` at ``when``."""
        return cls(kind="kill", worker=worker, round=round, when=when)

    @classmethod
    def drop_batch(cls, worker: int, round: int, dest: int) -> "Fault":
        """Lose the batch ``worker`` emits to ``dest`` in round ``round``."""
        return cls(kind="drop_batch", worker=worker, round=round, dest=dest)

    @classmethod
    def delay_batch(
        cls, worker: int, round: int, dest: int, seconds: float
    ) -> "Fault":
        """Deliver that batch only after ``seconds`` of transport delay."""
        return cls(
            kind="delay_batch", worker=worker, round=round, dest=dest,
            seconds=seconds,
        )

    @classmethod
    def slow(cls, worker: int, round: int, seconds: float) -> "Fault":
        """Stall ``worker`` for ``seconds`` before its round report."""
        return cls(kind="slow", worker=worker, round=round, seconds=seconds)


class FaultPlan:
    """An immutable, picklable collection of :class:`Fault` specs.

    The engine validates the plan against the fleet (worker/dest ids in
    range) before spawning, slices it per worker
    (:meth:`for_worker` — each process only ships its own faults), and
    each worker consults its slice at the scripted protocol points.
    Every fault fires at most once.
    """

    def __init__(self, faults: Sequence[Fault] = ()) -> None:
        for fault in faults:
            if not isinstance(fault, Fault):
                raise ConfigurationError(
                    f"FaultPlan takes Fault instances, got {fault!r}"
                )
        self.faults: tuple[Fault, ...] = tuple(faults)

    def __iter__(self) -> Iterator[Fault]:
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({list(self.faults)!r})"

    def validate_for(self, num_workers: int) -> None:
        """Reject faults addressing workers outside ``0..num_workers-1``."""
        for fault in self.faults:
            for role, w in (("worker", fault.worker), ("dest", fault.dest)):
                if w is not None and w >= num_workers:
                    raise ConfigurationError(
                        f"fault {role} {w} is out of range for a fleet of "
                        f"{num_workers} workers"
                    )

    def kills(self) -> list[Fault]:
        """The kill faults, in round order (used by coordinators/tests)."""
        return sorted(
            (f for f in self.faults if f.kind == "kill"),
            key=lambda f: f.round,
        )

    def for_worker(self, worker: int) -> "WorkerFaults | None":
        """This worker's slice of the plan (``None`` when it has none)."""
        mine = [f for f in self.faults if f.worker == worker]
        return WorkerFaults(mine) if mine else None


class WorkerFaults:
    """One worker's faults, consulted inside the worker loop.

    Each query consumes the matching fault (fire-at-most-once); the
    object is small and pickles with the worker spawn args. A respawned
    replacement worker is shipped *no* faults — a recovered worker does
    not re-crash on replay, matching the crash-stop model.
    """

    def __init__(self, faults: Sequence[Fault]) -> None:
        self._pending: list[Fault] = list(faults)

    def _take(self, **match: object) -> Fault | None:
        for i, fault in enumerate(self._pending):
            if all(getattr(fault, k) == v for k, v in match.items()):
                return self._pending.pop(i)
        return None

    def kill_now(self, round: int, when: str) -> bool:
        """Should this worker die at this point? (``os._exit`` follows.)"""
        return self._take(kind="kill", round=round, when=when) is not None

    def on_transport(self, round: int, dest: int) -> str | None:
        """Transport fault for the batch emitted in ``round`` to ``dest``.

        Returns ``"drop"`` (skip the enqueue), or ``None`` after
        serving any scripted delay inline.
        """
        if self._take(kind="drop_batch", round=round, dest=dest) is not None:
            return "drop"
        delayed = self._take(kind="delay_batch", round=round, dest=dest)
        if delayed is not None:
            _time.sleep(delayed.seconds)
        return None

    def stall_before_report(self, round: int) -> None:
        """Serve a scripted ``slow`` stall before the round report."""
        fault = self._take(kind="slow", round=round)
        if fault is not None:
            _time.sleep(fault.seconds)
