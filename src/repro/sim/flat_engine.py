"""Flat, array-based lockstep execution of the one-to-one protocol.

**Object engine vs flat engine.** :class:`repro.sim.engine.RoundEngine`
is the general simulator: it runs *any* :class:`~repro.sim.node.Process`
subclass, supports peersim's randomized activation order, observers, and
the async variants — and pays for that generality in Python objects. A
single protocol round allocates a ``(sender, payload)`` tuple per
message, a fresh list per delivered mailbox, a sorted pid list per
round, and touches every process (``on_round``) even when the network is
quiescent around it. :class:`FlatOneToOneEngine` is the specialised
counterpart: it hard-codes Algorithm 1 over a
:class:`~repro.graph.csr.CSRGraph` and keeps **all** protocol state in
flat arrays —

* ``core[i]`` — node ``i``'s current estimate (the object engine's
  ``KCoreNode.core``);
* ``est[e]`` — the estimate the owner of directed edge ``e`` last heard
  from ``targets[e]`` (the per-node ``est`` dicts, flattened onto the
  CSR edge array; the sentinel ``Δ + 1`` plays the role of +∞);
* ``incoming[e]`` + a slot list — next round's mailboxes: a message to
  edge slot ``e`` is one array write, no tuple, no list;
* a frontier deque of nodes whose ``est`` changed — only those
  recompute, so quiescent regions cost nothing per round;
* one shared scratch buffer for ``computeIndex``'s buckets.

**Semantics.** The engine is a bit-exact replay of
``RoundEngine(mode="lockstep")`` driving ``KCoreNode`` processes:
coreness values, executed round count, execution time, per-round send
counts, and per-node message counts all match exactly (asserted by
``tests/test_flat_equivalence.py``). This holds because lockstep rounds
are order-independent within a round — message folding is a min, and
sends are buffered for the next round — so replacing "activate every
process in pid order" with "drain the frontier" changes no observable
state.

**When is each selected?** ``run_one_to_one(engine="flat")`` routes
here; it requires ``mode="lockstep"`` and no observers. Use the flat
path for scale (large graphs, benchmarks, as the substrate for sharded
batch processing); use the object engine when you need peersim
activation semantics, observers/tracing hooks, failure injection, or
the async engine — i.e. fidelity features over throughput.
"""

from __future__ import annotations

import time as _time
from array import array
from collections import deque

from repro.core.compute_index import compute_index
from repro.errors import ConvergenceError
from repro.graph.csr import CSRGraph
from repro.sim.metrics import SimulationStats

__all__ = ["FlatOneToOneEngine"]


class FlatOneToOneEngine:
    """Algorithm 1 over CSR arrays, lockstep delivery discipline.

    Parameters mirror the relevant subset of :class:`RoundEngine`:
    ``max_rounds`` bounds the run (exceeding it raises
    :class:`ConvergenceError` when ``strict``, else returns a partial
    result flagged ``converged=False``), ``optimize_sends`` enables the
    Section 3.1.2 message filter.

    After :meth:`run`, :attr:`core` holds the coreness per compact node
    index (``csr.ids[i]`` is the original id).
    """

    __slots__ = ("csr", "optimize_sends", "max_rounds", "strict", "core", "stats")

    def __init__(
        self,
        csr: CSRGraph,
        optimize_sends: bool = True,
        max_rounds: int = 1_000_000,
        strict: bool = True,
    ) -> None:
        self.csr = csr
        self.optimize_sends = optimize_sends
        self.max_rounds = max_rounds
        self.strict = strict
        self.core: array = array("q")
        self.stats = SimulationStats()

    # ------------------------------------------------------------------
    def coreness(self) -> dict[int, int]:
        """``{original node id: coreness}`` after :meth:`run`."""
        ids = self.csr.ids
        core = self.core
        return {ids[i]: core[i] for i in range(len(ids))}

    def _export_messages(self, sent: array) -> None:
        """Fold the per-node send counters into the stats object."""
        ids = self.csr.ids
        per_process = self.stats.sent_per_process
        total = 0
        for i, count in enumerate(sent):
            if count:
                per_process[ids[i]] = count
                total += count
        self.stats.total_messages = total

    # ------------------------------------------------------------------
    def run(self) -> SimulationStats:
        """Run to quiescence (or ``max_rounds``); returns the stats.

        The replay skips work the object engine does without observable
        effect, using one extra array: ``sup[v]`` counts the slots in
        ``v``'s slice with ``est >= core[v]``. Since ``computeIndex``
        lowers ``core[v]`` iff fewer than ``core[v]`` neighbours have
        estimates ``>= core[v]`` (its suffix-count ``count[k] < k``
        test), a delivery needs a recompute only when it drops ``sup``
        below ``core`` — every other message is a single array write.
        After each recompute ``sup`` is re-read from the suffix-summed
        scratch buffer (``scratch[t]`` is exactly ``#{est >= t}``), which
        restores the invariant ``sup >= core`` at every round boundary.
        """
        start = _time.perf_counter()
        csr = self.csr
        stats = self.stats
        n = csr.num_nodes
        offsets = csr.offsets
        targets = csr.targets
        mirror = csr.mirror()
        owner = csr.edge_owners()
        num_slots = len(targets)
        optimize = self.optimize_sends

        # est[e] starts at the +∞ sentinel: strictly above any payload
        # (payloads are estimates, bounded by Δ), so the first message on
        # an edge always records, the send filter never suppresses on an
        # unheard-from neighbour, and computeIndex clamps it to k just as
        # it clamps the object engine's `core + 1` default.
        sentinel = csr.max_degree() + 1
        est = array("q", [sentinel]) * num_slots
        incoming = array("q", [0]) * num_slots
        core = self.core = array("q", [0]) * n
        sup = array("q", [0]) * n
        sent = array("q", [0]) * n
        est_view = memoryview(est) if num_slots else est

        # mailboxes: slots that received a message, double-buffered
        slots_now: list[int] = []
        slots_next: list[int] = []
        in_frontier = bytearray(n)
        frontier: deque[int] = deque()
        frontier_pop = frontier.popleft
        frontier_push = frontier.append
        scratch: list[int] = []
        _compute_index = compute_index

        # Round 1: every node initialises to its degree and broadcasts
        # it on every edge — 2m messages, one per slot, no buffering
        # needed because round 2 below reads the sender degrees straight
        # from the CSR offsets.
        rnd = 1
        sends = num_slots
        for i in range(n):
            core[i] = sent[i] = offsets[i + 1] - offsets[i]
        degree = array("q", core)
        stats.sends_per_round.append(sends)
        if sends:
            stats.execution_time += 1

        first_delivery = True
        while sends:
            if rnd >= self.max_rounds:
                stats.converged = False
                self._export_messages(sent)
                stats.wall_seconds = _time.perf_counter() - start
                if self.strict:
                    raise ConvergenceError(rnd)
                return stats
            rnd += 1
            if first_delivery:
                # Round 2: every slot carries its sender's degree.
                first_delivery = False
                for v in range(n):
                    lo = offsets[v]
                    hi = offsets[v + 1]
                    k = hi - lo
                    s = 0
                    for e in range(lo, hi):
                        d = degree[targets[e]]
                        est[e] = d
                        if d >= k:
                            s += 1
                    sup[v] = s
                    if s < k:
                        in_frontier[v] = 1
                        frontier_push(v)
            else:
                # fold last round's sends into est; only deliveries that
                # push a node's support below its core need a recompute
                slots_now, slots_next = slots_next, slots_now
                for slot in slots_now:
                    value = incoming[slot]
                    old = est[slot]
                    if value < old:
                        est[slot] = value
                        v = owner[slot]
                        k = core[v]
                        if old >= k and value < k:
                            s = sup[v] - 1
                            sup[v] = s
                            if s < k and not in_frontier[v]:
                                in_frontier[v] = 1
                                frontier_push(v)
                slots_now.clear()
            # recompute + broadcast: only frontier nodes do any work
            sends = 0
            while frontier:
                v = frontier_pop()
                in_frontier[v] = 0
                lo = offsets[v]
                hi = offsets[v + 1]
                k = core[v]
                t = _compute_index(est_view[lo:hi], k, scratch)
                # scratch is the suffix-summed bucket array of that call:
                # scratch[t] == #{slots with est >= t}, the fresh support
                sup[v] = scratch[t]
                if t < k:
                    core[v] = t
                    count = 0
                    for e in range(lo, hi):
                        if optimize and t >= est[e]:
                            continue
                        slot = mirror[e]
                        incoming[slot] = t
                        slots_next.append(slot)
                        count += 1
                    if count:
                        sent[v] += count
                        sends += count
            stats.sends_per_round.append(sends)
            if sends:
                stats.execution_time += 1

        stats.rounds_executed = rnd
        self._export_messages(sent)
        stats.wall_seconds = _time.perf_counter() - start
        return stats
