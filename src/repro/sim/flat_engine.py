"""Flat, array-based execution of the one-to-one protocol.

**Object engine vs flat engines.** :class:`repro.sim.engine.RoundEngine`
is the general simulator: it runs *any* :class:`~repro.sim.node.Process`
subclass, supports observers, and the async variants — and pays for that
generality in Python objects. A single protocol round allocates a
``(sender, payload)`` tuple per message, a fresh list per delivered
mailbox, a pid list per round, and touches every process (``on_round``)
even when the network is quiescent around it. This module provides the
specialised counterparts: they hard-code Algorithm 1 over a
:class:`~repro.graph.csr.CSRGraph` and keep **all** protocol state in
flat arrays —

* ``core[i]`` — node ``i``'s current estimate (the object engine's
  ``KCoreNode.core``);
* ``est[e]`` — the estimate the owner of directed edge ``e`` last heard
  from ``targets[e]`` (the per-node ``est`` dicts, flattened onto the
  CSR edge array; the sentinel ``Δ + 1`` plays the role of +∞);
* ``incoming[e]`` + slot lists — the mailboxes: a message to edge slot
  ``e`` is one array write, no tuple, no per-message object;
* ``sup[v]`` — the support counter that lets deliveries skip
  ``computeIndex`` unless they can actually lower ``core[v]``;
* one shared scratch buffer for ``computeIndex``'s buckets.

Since PR 4 the per-round array work lives in the shared kernel layer
(:mod:`repro.sim.kernels`): the engines orchestrate rounds, truncation
and statistics, while a :class:`~repro.sim.kernels.base.KernelBackend`
executes the seeding / fold / frontier phases. ``backend="stdlib"``
(default) runs the canonical loops this module used to hold inline;
``backend="numpy"`` runs the vectorised kernels — bit-identical
results, chosen per run.

Both delivery disciplines of the object engine are covered:

* :class:`FlatOneToOneEngine` replays ``RoundEngine(mode="lockstep")``
  — the synchronous Section-4 model. Lockstep rounds are
  order-independent within a round, so the replay drains a per-round
  frontier instead of activating every process, quiescent regions cost
  nothing per round, and every phase is a batch — which is exactly what
  makes the numpy backend applicable here.
* :class:`FlatPeerSimEngine` replays ``RoundEngine(mode="peersim")`` —
  PeerSim's cycle semantics used by the Section-5 experiments: a fresh
  random activation order every round, and messages delivered
  *immediately*, so a node activated later in a round sees estimates
  sent earlier in the same round. The engine consumes the **identical
  RNG stream** (one ``rng.shuffle`` of the same-length pid list per
  executed round), so for any seed the coreness, round counts,
  execution time, per-round send counts, and per-node message counts
  are bit-identical to the object engine — t_avg/t_min/t_max spreads
  over seeds (Table 1) are exactly reproduced, just faster. Immediate
  delivery makes each activation observe the previous one's writes, so
  this engine is inherently sequential and **stdlib-only** (see the
  support matrix in :mod:`repro.sim.kernels`).

**Semantics.** Bit-exactness is asserted by
``tests/test_flat_equivalence.py`` (lockstep) and
``tests/test_flat_peersim_equivalence.py`` (peersim); backend
bit-exactness by ``tests/test_backend_equivalence.py``. For lockstep
this holds because message folding is a min and sends are buffered for
the next round, so replacing "activate every process in pid order" with
"drain the frontier" changes no observable state. For peersim the
activation order *is* observable, so the flat engine replays it
verbatim from the shared RNG stream.

**When is each selected?** ``run_one_to_one(engine="flat")`` routes
here, choosing the class by ``config.mode``. Generic observers are not
supported (use the object engine for per-round callbacks, failure
injection, or the async engine — i.e. fidelity features over
throughput); the two sanctioned pure observers are supported natively:
``telemetry=`` brackets rounds and kernel phases in
:mod:`repro.telemetry` spans, and ``recorders=`` feeds
:class:`~repro.sim.tracing.TraceRecorder` instances the same per-round
aggregates the object engine's observer path produces (array diff per
round, only when a recorder is attached). Neither can perturb the
replay: both are write-only sinks the protocol never reads back.
"""

from __future__ import annotations

import random
import time as _time
from array import array
from typing import Sequence

from repro.core.compute_index import compute_index
from repro.errors import ConvergenceError, SimulationError
from repro.graph.csr import CSRGraph
from repro.sim.kernels import KernelBackend, export_send_counts, resolve_backend
from repro.sim.metrics import SimulationStats
from repro.sim.tracing import record_flat_round, reference_slice
from repro.telemetry.spans import resolve_tracer
from repro.utils.rng import make_rng

__all__ = ["FlatOneToOneEngine", "FlatPeerSimEngine"]


class FlatOneToOneEngine:
    """Algorithm 1 over CSR arrays, lockstep delivery discipline.

    Parameters mirror the relevant subset of :class:`RoundEngine`:
    ``max_rounds`` bounds the run (exceeding it raises
    :class:`ConvergenceError` when ``strict``, else returns a partial
    result flagged ``converged=False``), ``optimize_sends`` enables the
    Section 3.1.2 message filter, and ``backend`` picks the kernel
    backend (name or instance; see :mod:`repro.sim.kernels`).

    After :meth:`run`, :attr:`core` holds the coreness per compact node
    index (``csr.ids[i]`` is the original id).
    """

    __slots__ = (
        "csr",
        "optimize_sends",
        "max_rounds",
        "strict",
        "backend",
        "core",
        "stats",
        "tracer",
        "recorders",
    )

    def __init__(
        self,
        csr: CSRGraph,
        optimize_sends: bool = True,
        max_rounds: int = 1_000_000,
        strict: bool = True,
        backend: "str | KernelBackend" = "stdlib",
        telemetry: object = None,
        recorders: Sequence = (),
    ) -> None:
        self.csr = csr
        self.optimize_sends = optimize_sends
        self.max_rounds = max_rounds
        self.strict = strict
        self.backend = resolve_backend(backend)
        self.core = self.backend.full(0)
        self.stats = SimulationStats()
        # telemetry and recorders are pure observers: with telemetry
        # disabled the tracer is the shared no-op singleton and with no
        # recorders the per-round diff never runs, so the replay hot
        # loop is untouched in the default configuration
        self.tracer = resolve_tracer(telemetry)
        self.recorders = list(recorders)

    # ------------------------------------------------------------------
    def coreness(self) -> dict[int, int]:
        """``{original node id: coreness}`` after :meth:`run`."""
        ids = self.csr.ids
        core = self.core
        return {ids[i]: int(core[i]) for i in range(len(ids))}

    # ------------------------------------------------------------------
    def run(self) -> SimulationStats:
        """Run to quiescence (or ``max_rounds``); returns the stats.

        The replay skips work the object engine does without observable
        effect, using one extra array: ``sup[v]`` counts the slots in
        ``v``'s slice with ``est >= core[v]``. Since ``computeIndex``
        lowers ``core[v]`` iff fewer than ``core[v]`` neighbours have
        estimates ``>= core[v]`` (its suffix-count ``count[k] < k``
        test), a delivery needs a recompute only when it drops ``sup``
        below ``core`` — every other message is a single array write.
        After each recompute ``sup`` is re-read from the suffix-summed
        bucket counts, which restores the invariant ``sup >= core`` at
        every round boundary. Each round is three kernel calls: fold
        last round's slots (or seed the round-2 degree delivery), then
        recompute + emit over the frontier.
        """
        start = _time.perf_counter()
        kb = self.backend
        csr = self.csr
        stats = self.stats
        tracer = self.tracer
        recorders = self.recorders
        n = csr.num_nodes
        offsets = kb.graph_array(csr.offsets)
        targets = kb.graph_array(csr.targets)
        mirror = kb.graph_array(csr.mirror())
        owner = kb.graph_array(csr.edge_owners())
        num_slots = len(csr.targets)
        optimize = self.optimize_sends

        # est[e] starts at the +∞ sentinel: strictly above any payload
        # (payloads are estimates, bounded by Δ), so the first message on
        # an edge always records, the send filter never suppresses on an
        # unheard-from neighbour, and computeIndex clamps it to k just as
        # it clamps the object engine's `core + 1` default.
        sentinel = csr.max_degree() + 1
        est = kb.full(num_slots, sentinel)
        incoming = kb.full(num_slots, 0)
        core = self.core = kb.full(n, 0)
        sup = kb.full(n, 0)
        sent = kb.full(n, 0)
        in_frontier = bytearray(n)
        scratch: list[int] = []

        # Round 1: every node initialises to its degree and broadcasts
        # it on every edge — 2m messages, one per slot, no buffering
        # needed because round 2 below reads the sender degrees straight
        # from the CSR offsets.
        rnd = 1
        sends = num_slots
        with tracer.span("round", round=1):
            degree = kb.degrees(offsets, n)
            core[:] = degree
            sent[:] = degree
        stats.sends_per_round.append(sends)
        if sends:
            stats.execution_time += 1
        if recorders:
            prev = [-1] * n
            refs = [reference_slice(r.reference, csr.ids) for r in recorders]
            record_flat_round(recorders, refs, rnd, sends, core, prev)

        seeded = False
        slots = None
        while sends:
            if rnd >= self.max_rounds:
                stats.converged = False
                stats.rounds_executed = rnd
                export_send_counts(stats, sent, csr.ids)
                stats.wall_seconds = _time.perf_counter() - start
                if self.strict:
                    raise ConvergenceError(rnd)
                return stats
            rnd += 1
            with tracer.span("round", round=rnd) as round_span:
                if not seeded:
                    # Round 2: every slot carries its sender's degree.
                    seeded = True
                    with tracer.span("kernel.seed_estimates"):
                        frontier = kb.seed_estimates(
                            offsets, targets, owner, degree, est, sup,
                            in_frontier,
                        )
                else:
                    with tracer.span("kernel.fold_slots"):
                        frontier = kb.fold_slots(
                            slots, incoming, est, owner, core, sup,
                            in_frontier,
                        )
                with tracer.span("kernel.process_frontier"):
                    sends, slots = kb.process_frontier(
                        frontier, offsets, targets, mirror, est, core, sup,
                        incoming, sent, optimize, scratch, in_frontier,
                    )
                round_span.note(sends=int(sends))
            stats.sends_per_round.append(int(sends))
            if sends:
                stats.execution_time += 1
            if recorders:
                record_flat_round(
                    recorders, refs, rnd, int(sends), core, prev
                )

        stats.rounds_executed = rnd
        export_send_counts(stats, sent, csr.ids)
        stats.wall_seconds = _time.perf_counter() - start
        return stats


class FlatPeerSimEngine:
    """Algorithm 1 over CSR arrays, PeerSim cycle semantics (Section 5).

    A bit-exact, RNG-identical replay of ``RoundEngine(mode="peersim")``
    driving :class:`~repro.core.one_to_one.KCoreNode` processes: each
    round shuffles the pid list with the shared RNG stream and activates
    nodes in that order, and a message reaches its destination's mailbox
    *immediately* — a node activated later in a round already sees
    estimates sent earlier in the same round. That immediacy makes each
    activation a tiny data-dependent step, so this engine keeps the
    canonical scalar loop and supports only the stdlib kernel backend
    (the config layer rejects ``backend="numpy"`` + peersim loudly).

    Parameters
    ----------
    csr:
        The graph.
    seed:
        Seed (or shared :class:`random.Random`) for the per-round
        activation order; pass the same value as the object engine's
        ``seed`` to reproduce a run exactly.
    activation_ids:
        Original node ids in the object engine's process-dict insertion
        order (``list(graph.nodes())``). ``rng.shuffle`` permutes
        *positions*, so replaying the stream bit-exactly requires
        starting from the same base sequence. Defaults to ``csr.ids``
        (ascending original ids) — correct whenever the object engine
        was built from a graph whose nodes iterate in ascending order.
    optimize_sends / max_rounds / strict:
        As in :class:`FlatOneToOneEngine`.
    """

    __slots__ = (
        "csr",
        "seed",
        "optimize_sends",
        "max_rounds",
        "strict",
        "core",
        "stats",
        "tracer",
        "recorders",
        "_base_order",
    )

    def __init__(
        self,
        csr: CSRGraph,
        seed: int | random.Random | None = 0,
        optimize_sends: bool = True,
        max_rounds: int = 1_000_000,
        strict: bool = True,
        activation_ids: Sequence[int] | None = None,
        telemetry: object = None,
        recorders: Sequence = (),
    ) -> None:
        self.csr = csr
        self.seed = seed
        self.optimize_sends = optimize_sends
        self.max_rounds = max_rounds
        self.strict = strict
        self.core: array = array("q")
        self.stats = SimulationStats()
        # pure observers, as in the lockstep engine: the inherently
        # sequential per-activation loop is never bracketed — only the
        # round boundaries are, so tracing costs one span per round
        self.tracer = resolve_tracer(telemetry)
        self.recorders = list(recorders)
        if activation_ids is None:
            self._base_order = list(range(csr.num_nodes))
        else:
            index = csr.index
            self._base_order = [index(p) for p in activation_ids]
            if (
                len(self._base_order) != csr.num_nodes
                or len(set(self._base_order)) != csr.num_nodes
            ):
                raise SimulationError(
                    "activation_ids must enumerate every node exactly once"
                )

    # ------------------------------------------------------------------
    def coreness(self) -> dict[int, int]:
        """``{original node id: coreness}`` after :meth:`run`."""
        ids = self.csr.ids
        core = self.core
        return {ids[i]: core[i] for i in range(len(ids))}

    # ------------------------------------------------------------------
    def run(self) -> SimulationStats:
        """Run to quiescence (or ``max_rounds``); returns the stats.

        Mailboxes are per-node lists of edge slots (one entry per
        message, so the undelivered-message count the object engine uses
        for its quiescence check is ``sum(len(mail[v])))``, tracked
        incrementally). ``incoming[slot]`` always holds the latest (and,
        estimates being monotone decreasing, smallest) payload sent over
        that slot, so folding a mailbox is pure array reads. The same
        ``sup`` support-counter shortcut as the lockstep engine applies:
        within one activation the object engine folds the whole mailbox
        *then* recomputes once, so a recompute can be skipped whenever
        the folded batch provably leaves ``computeIndex`` at ``core[v]``
        (support still >= core) — the object engine's recompute returns
        ``core[v]`` unchanged and sends nothing in exactly those cases.
        """
        start = _time.perf_counter()
        csr = self.csr
        stats = self.stats
        tracer = self.tracer
        recorders = self.recorders
        n = csr.num_nodes
        offsets = csr.offsets
        targets = csr.targets
        mirror = csr.mirror()
        num_slots = len(targets)
        optimize = self.optimize_sends
        rng = make_rng(self.seed)
        shuffle = rng.shuffle
        base = self._base_order

        sentinel = csr.max_degree() + 1
        est = array("q", [sentinel]) * num_slots
        incoming = array("q", [0]) * num_slots
        core = self.core = array("q", [0]) * n
        sup = array("q", [0]) * n
        sent = array("q", [0]) * n
        est_view = memoryview(est) if num_slots else est
        mail: list[list[int]] = [[] for _ in range(n)]
        scratch: list[int] = []
        _compute_index = compute_index

        # Round 1: on_init in shuffled order — every node broadcasts its
        # degree on every edge, delivered immediately. No activation
        # reads its mailbox during round 1 (on_init only sends), so the
        # order cannot influence state; the shuffle still runs to keep
        # the RNG stream aligned with the object engine.
        order = base[:]
        shuffle(order)
        rnd = 1
        sends = num_slots
        pending = num_slots
        with tracer.span("round", round=1):
            for v in range(n):
                lo = offsets[v]
                hi = offsets[v + 1]
                core[v] = sup[v] = sent[v] = hi - lo
                if hi > lo:
                    mail[v] = list(range(lo, hi))
            degree = array("q", core)
            for e in range(num_slots):
                incoming[e] = degree[targets[e]]
        stats.sends_per_round.append(sends)
        if sends:
            stats.execution_time += 1
        if recorders:
            prev = [-1] * n
            refs = [reference_slice(r.reference, csr.ids) for r in recorders]
            record_flat_round(recorders, refs, rnd, sends, core, prev)

        while sends or pending:
            if rnd >= self.max_rounds:
                stats.converged = False
                stats.rounds_executed = rnd
                export_send_counts(stats, sent, csr.ids)
                stats.wall_seconds = _time.perf_counter() - start
                if self.strict:
                    raise ConvergenceError(rnd)
                return stats
            rnd += 1
            sends = 0
            with tracer.span("round", round=rnd) as round_span:
                order = base[:]
                shuffle(order)
                for v in order:
                    box = mail[v]
                    if not box:
                        continue
                    pending -= len(box)
                    k = core[v]
                    s = sup[v]
                    for slot in box:
                        value = incoming[slot]
                        old = est[slot]
                        if value < old:
                            est[slot] = value
                            if old >= k and value < k:
                                s -= 1
                    box.clear()
                    sup[v] = s
                    if s < k:
                        lo = offsets[v]
                        hi = offsets[v + 1]
                        t = _compute_index(est_view[lo:hi], k, scratch)
                        sup[v] = scratch[t]
                        if t < k:
                            core[v] = t
                            count = 0
                            for e in range(lo, hi):
                                if optimize and t >= est[e]:
                                    continue
                                slot = mirror[e]
                                incoming[slot] = t
                                mail[targets[e]].append(slot)
                                count += 1
                            if count:
                                sent[v] += count
                                sends += count
                                pending += count
                round_span.note(sends=sends)
            stats.sends_per_round.append(sends)
            if sends:
                stats.execution_time += 1
            if recorders:
                record_flat_round(recorders, refs, rnd, sends, core, prev)

        stats.rounds_executed = rnd
        export_send_counts(stats, sent, csr.ids)
        stats.wall_seconds = _time.perf_counter() - start
        return stats
