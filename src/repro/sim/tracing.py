"""Structured run traces: capture, summarize, export.

An observer that records per-round aggregates of a protocol run —
messages sent, number of processes whose public ``core`` changed,
current error against an optional reference — and serialises the trace
as JSON for external tooling. The benchmark harness writes CSV for the
paper's figures; this is the complementary "give me everything about
one run" facility for debugging and notebooks.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import RoundEngine

__all__ = ["RoundSnapshot", "TraceRecorder"]


@dataclass(frozen=True)
class RoundSnapshot:
    """Aggregates for one executed round."""

    round_number: int
    messages_sent: int
    estimates_changed: int
    total_error: int | None


@dataclass
class TraceRecorder:
    """Engine observer collecting :class:`RoundSnapshot` per round.

    ``reference`` (optional) is the true coreness; when provided, each
    snapshot carries the summed residual error. Processes are expected
    to expose an integer ``core`` attribute (all k-core processes do).
    """

    reference: dict[int, int] | None = None
    snapshots: list[RoundSnapshot] = field(default_factory=list)
    _last_cores: dict[int, int] = field(default_factory=dict, repr=False)

    def __call__(self, round_number: int, engine: "RoundEngine") -> None:
        changed = 0
        error: int | None = 0 if self.reference is not None else None
        for pid, process in engine.processes.items():
            core = getattr(process, "core", None)
            if core is None:
                continue
            if self._last_cores.get(pid) != core:
                changed += 1
                self._last_cores[pid] = core
            if self.reference is not None and error is not None:
                error += core - self.reference[pid]
        self.snapshots.append(
            RoundSnapshot(
                round_number=round_number,
                messages_sent=engine.stats.sends_per_round[-1],
                estimates_changed=changed,
                total_error=error,
            )
        )

    # ------------------------------------------------------------------
    @property
    def rounds(self) -> int:
        return len(self.snapshots)

    def quiet_rounds(self) -> int:
        """Rounds with no sends (trailing detection rounds, stalls)."""
        return sum(1 for snap in self.snapshots if snap.messages_sent == 0)

    def to_json(self, indent: int | None = None) -> str:
        """Serialise the trace (stable field order, JSON lines friendly)."""
        payload = [
            {
                "round": snap.round_number,
                "messages": snap.messages_sent,
                "changed": snap.estimates_changed,
                "error": snap.total_error,
            }
            for snap in self.snapshots
        ]
        return json.dumps(payload, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "TraceRecorder":
        """Rebuild a recorder (snapshots only) from :meth:`to_json` output."""
        recorder = cls()
        for item in json.loads(text):
            recorder.snapshots.append(
                RoundSnapshot(
                    round_number=item["round"],
                    messages_sent=item["messages"],
                    estimates_changed=item["changed"],
                    total_error=item["error"],
                )
            )
        return recorder
