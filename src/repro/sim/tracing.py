"""Structured run traces: capture, summarize, export.

An observer that records per-round aggregates of a protocol run —
messages sent, number of processes whose public ``core`` changed,
current error against an optional reference — and serialises the trace
as JSON for external tooling. The benchmark harness writes CSV for the
paper's figures; this is the complementary "give me everything about
one run" facility for debugging and notebooks.

Two feeding paths produce identical snapshots:

* as an engine **observer** (``observer(round_number, engine)``) on the
  object :class:`~repro.sim.engine.RoundEngine`, walking the live
  process objects;
* via :meth:`TraceRecorder.record` with precomputed aggregates — how
  the flat and mp engines attach a recorder without materialising
  process objects (they diff their estimate arrays per round; the mp
  coordinator sums per-worker aggregates shipped with the round
  reports). On one-to-many runs the array-diff path is strictly more
  informative than observing object ``KCoreHost``\\ s, which expose no
  per-node ``core``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import RoundEngine

__all__ = [
    "RoundSnapshot",
    "TraceRecorder",
    "diff_round",
    "record_flat_round",
    "recorders_from_observers",
    "reference_slice",
]


@dataclass(frozen=True)
class RoundSnapshot:
    """Aggregates for one executed round."""

    round_number: int
    messages_sent: int
    estimates_changed: int
    total_error: int | None


@dataclass
class TraceRecorder:
    """Engine observer collecting :class:`RoundSnapshot` per round.

    ``reference`` (optional) is the true coreness; when provided, each
    snapshot carries the summed residual error. Processes are expected
    to expose an integer ``core`` attribute (all k-core processes do).
    """

    reference: dict[int, int] | None = None
    snapshots: list[RoundSnapshot] = field(default_factory=list)
    _last_cores: dict[int, int] = field(default_factory=dict, repr=False)

    def __call__(self, round_number: int, engine: "RoundEngine") -> None:
        changed = 0
        error: int | None = 0 if self.reference is not None else None
        for pid, process in engine.processes.items():
            core = getattr(process, "core", None)
            if core is None:
                continue
            if self._last_cores.get(pid) != core:
                changed += 1
                self._last_cores[pid] = core
            if self.reference is not None and error is not None:
                error += core - self.reference[pid]
        self.snapshots.append(
            RoundSnapshot(
                round_number=round_number,
                messages_sent=engine.stats.sends_per_round[-1],
                estimates_changed=changed,
                total_error=error,
            )
        )

    def record(
        self,
        round_number: int,
        messages_sent: int,
        estimates_changed: int,
        total_error: int | None,
    ) -> None:
        """Append one round's precomputed aggregates (flat/mp engines).

        The direct-feed counterpart of the observer ``__call__``: the
        caller supplies the aggregates (array diffs, summed worker
        reports) instead of the recorder walking process objects.
        ``total_error`` follows the same convention — ``None`` when no
        reference is configured, the signed residual sum otherwise.
        """
        self.snapshots.append(
            RoundSnapshot(
                round_number=round_number,
                messages_sent=messages_sent,
                estimates_changed=estimates_changed,
                total_error=total_error,
            )
        )

    # ------------------------------------------------------------------
    @property
    def rounds(self) -> int:
        return len(self.snapshots)

    def quiet_rounds(self) -> int:
        """Rounds with no sends (trailing detection rounds, stalls)."""
        return sum(1 for snap in self.snapshots if snap.messages_sent == 0)

    def to_json(self, indent: int | None = None) -> str:
        """Serialise the trace (stable field order, JSON lines friendly)."""
        payload = [
            {
                "round": snap.round_number,
                "messages": snap.messages_sent,
                "changed": snap.estimates_changed,
                "error": snap.total_error,
            }
            for snap in self.snapshots
        ]
        return json.dumps(payload, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "TraceRecorder":
        """Rebuild a recorder (snapshots only) from :meth:`to_json` output."""
        recorder = cls()
        for item in json.loads(text):
            recorder.snapshots.append(
                RoundSnapshot(
                    round_number=item["round"],
                    messages_sent=item["messages"],
                    estimates_changed=item["changed"],
                    total_error=item["error"],
                )
            )
        return recorder


# ----------------------------------------------------------------------
# Array-diff feeding path (flat and mp engines)

def recorders_from_observers(
    observers, engine: str
) -> "tuple[TraceRecorder, ...]":
    """Validate flat/mp ``observers``: :class:`TraceRecorder` only.

    The array engines materialise no process objects, so generic
    observers — ``observer(round_number, engine)`` callables poking at
    ``engine.processes`` — cannot run there and are rejected loudly.
    :class:`TraceRecorder` instances pass through: they are fed the
    array-diff aggregates instead and produce the same snapshots as the
    object engine's observer path.
    """
    from repro.errors import ConfigurationError

    recorders = tuple(o for o in observers if isinstance(o, TraceRecorder))
    if len(recorders) != len(observers):
        raise ConfigurationError(
            f"engine={engine!r} does not support generic observers: "
            "round-engine hooks cannot observe state the array engines "
            "never materialise (or, for 'mp', state living in other OS "
            "processes); use engine='round' for custom traced runs. "
            "TraceRecorder instances are the exception — they are fed "
            "through the engines' array-diff path."
        )
    return recorders


def reference_slice(
    reference: "dict[int, int] | None", ids: "list[int]"
) -> "list[int] | None":
    """A recorder's reference re-indexed to compact array order.

    ``ids[i]`` is the original node id at compact index ``i`` (a
    ``CSRGraph.ids`` slice, or one shard's owned ids), so the result
    lines up with the engine's estimate arrays.
    """
    if reference is None:
        return None
    return [reference[node] for node in ids]


def diff_round(
    values: "object",
    prev: "list[int]",
    refs: "list[list[int] | None]",
) -> "tuple[int, list[int | None]]":
    """One round's aggregates over an estimate array slice.

    Counts entries of ``values`` differing from ``prev`` (updating
    ``prev`` in place, so consecutive calls see per-round deltas; seed
    ``prev`` with ``-1`` so the first round counts every node — the
    observer path does the same via its first-observation rule) and,
    per reference slice in ``refs``, the signed residual
    ``sum(values[i] - ref[i])``. mp workers run this on their owned
    slice and ship the result with the round report; the coordinator
    sums shard aggregates — addition is associative, so sharding does
    not change the totals.
    """
    n = len(prev)
    changed = 0
    for i in range(n):
        value = values[i]
        if value != prev[i]:
            changed += 1
            prev[i] = value
    errors: "list[int | None]" = []
    for ref in refs:
        if ref is None:
            errors.append(None)
        else:
            total = 0
            for i in range(n):
                total += int(values[i]) - ref[i]
            errors.append(total)
    return changed, errors


def record_flat_round(
    recorders: "list[TraceRecorder]",
    refs: "list[list[int] | None]",
    round_number: int,
    messages_sent: int,
    values: "object",
    prev: "list[int]",
) -> None:
    """Diff one round and feed every attached recorder (flat engines)."""
    changed, errors = diff_round(values, prev, refs)
    for recorder, error in zip(recorders, errors):
        recorder.record(round_number, messages_sent, changed, error)
