"""Event-driven asynchronous engine.

The paper's system model (Section 2) only assumes reliable channels and
non-crashing hosts — round synchrony is a convenience of the analysis
and of PeerSim, not a correctness requirement. This engine delivers each
message after an arbitrary (bounded, per-message random) latency and
activates the periodic ``on_round`` hook of every process on its own
local clock, so executions are maximally unsynchronised. The k-core
protocol must still converge to the exact coreness (tested in
``tests/test_async.py``), which is the experimental counterpart of the
safety/liveness proofs not using synchrony anywhere.

Termination: the engine stops once no message is in flight and every
process has been activated at least once after the last delivery, i.e.
further timer ticks provably cannot send anything new (processes only
send from ``on_round`` when state changed, and state changes only on
deliveries). A hard ``max_time`` guards against runaway protocols.
"""

from __future__ import annotations

import heapq
import itertools
import random
import time as _time
from typing import Callable, Iterable, Mapping

from repro.errors import ConvergenceError, SimulationError
from repro.sim.metrics import SimulationStats
from repro.sim.node import Process
from repro.utils.rng import make_rng

__all__ = ["AsyncEngine"]

_DELIVER = 0
_TICK = 1


class _AsyncContext:
    __slots__ = ("_engine", "pid")

    def __init__(self, engine: "AsyncEngine") -> None:
        self._engine = engine
        self.pid = -1

    @property
    def round(self) -> int:
        # rounds are not meaningful under asynchrony; report tick count
        return self._engine._ticks.get(self.pid, 0)

    @property
    def time(self) -> float:
        return self._engine.now

    def send(self, dest: int, payload: object) -> None:
        self._engine._send(self.pid, dest, payload)


class AsyncEngine:
    """Asynchronous message-passing executor.

    Parameters
    ----------
    processes:
        Mapping or iterable of :class:`Process` objects.
    latency:
        Callable ``latency(rng) -> float`` returning a per-message delay;
        the default draws uniformly from ``[0.1, 2.5)`` periods, so
        messages routinely overtake each other (non-FIFO channels).
    period:
        Interval between two ``on_round`` activations of one process
        (the paper's δ). Each process's clock has a random phase.
    duplicate_prob:
        Fault injection: probability that a message is delivered twice
        (at independent delays). Reliable channels may duplicate in
        practice (retransmissions); the k-core protocol is idempotent —
        estimates fold with min — so results must be unaffected, which
        the failure-injection tests assert.
    """

    def __init__(
        self,
        processes: Mapping[int, Process] | Iterable[Process],
        latency: Callable[[random.Random], float] | None = None,
        period: float = 1.0,
        seed: int | random.Random | None = 0,
        max_time: float = 1e6,
        strict: bool = True,
        duplicate_prob: float = 0.0,
    ) -> None:
        if isinstance(processes, Mapping):
            self.processes: dict[int, Process] = dict(processes)
        else:
            self.processes = {p.pid: p for p in processes}
        self.rng = make_rng(seed)
        self.latency = latency or (lambda rng: 0.1 + 2.4 * rng.random())
        if period <= 0:
            raise SimulationError("period must be positive")
        if not 0.0 <= duplicate_prob < 1.0:
            raise SimulationError("duplicate_prob must lie in [0, 1)")
        self.period = period
        self.duplicate_prob = duplicate_prob
        self.max_time = max_time
        self.strict = strict
        self.now = 0.0
        self.stats = SimulationStats()
        self._ctx = _AsyncContext(self)
        self._queue: list[tuple[float, int, int, int, object]] = []
        self._counter = itertools.count()
        self._in_flight = 0
        self._last_delivery_time = 0.0
        self._ticks: dict[int, int] = {}
        self._tick_armed: set[int] = set()
        self._pending: dict[int, list[tuple[int, object]]] = {
            pid: [] for pid in self.processes
        }

    # ------------------------------------------------------------------
    def _send(self, sender: int, dest: int, payload: object) -> None:
        if dest not in self.processes:
            raise SimulationError(
                f"process {sender} sent to unknown process {dest}"
            )
        self.stats.merge_send(sender)
        copies = 1
        if self.duplicate_prob and self.rng.random() < self.duplicate_prob:
            copies = 2
        for _ in range(copies):
            delay = self.latency(self.rng)
            if delay < 0:
                raise SimulationError(
                    "latency function returned a negative delay"
                )
            self._in_flight += 1
            heapq.heappush(
                self._queue,
                (
                    self.now + delay,
                    _DELIVER,
                    next(self._counter),
                    dest,
                    (sender, payload),
                ),
            )

    def _schedule_tick(self, pid: int, at: float) -> None:
        if pid in self._tick_armed:
            return
        self._tick_armed.add(pid)
        heapq.heappush(
            self._queue, (at, _TICK, next(self._counter), pid, None)
        )

    # ------------------------------------------------------------------
    def run(self) -> SimulationStats:
        """Run until quiescence or ``max_time``."""
        start = _time.perf_counter()
        ctx = self._ctx

        # initialise all processes at time zero, in random order
        pids = list(self.processes)
        self.rng.shuffle(pids)
        for pid in pids:
            ctx.pid = pid
            self.processes[pid].on_init(ctx)
            self._ticks[pid] = 0
            self._schedule_tick(pid, self.rng.random() * self.period)

        idle_window = 2.0 * self.period
        while self._queue:
            when, kind, _, pid, data = heapq.heappop(self._queue)
            if when > self.max_time:
                self.stats.converged = False
                if self.strict:
                    raise ConvergenceError(
                        int(when), f"async run exceeded max_time={self.max_time}"
                    )
                break
            self.now = when
            ctx.pid = pid
            process = self.processes[pid]
            if kind == _DELIVER:
                self._in_flight -= 1
                self._last_delivery_time = self.now
                self._pending[pid].append(data)  # type: ignore[arg-type]
                # a quiesced receiver must wake up to process this message
                self._schedule_tick(pid, self.now + self.rng.random() * self.period)
            else:
                # tick: drain pending deliveries, then periodic hook
                self._tick_armed.discard(pid)
                batch = self._pending[pid]
                if batch:
                    self._pending[pid] = []
                    process.on_messages(ctx, batch)
                self._ticks[pid] += 1
                process.on_round(ctx)
                # stop scheduling ticks once the system is provably quiet
                quiet_for = self.now - max(self._last_delivery_time, 0.0)
                if self._in_flight > 0 or quiet_for < idle_window:
                    self._schedule_tick(pid, self.now + self.period)

        self.stats.rounds_executed = max(self._ticks.values(), default=0)
        self.stats.execution_time = self.stats.rounds_executed
        self.stats.wall_seconds = _time.perf_counter() - start
        return self.stats
