"""Multi-process execution of the one-to-many protocol.

Every engine before this one simulates the paper's hosts inside a
single Python process. This module is the first step from "fast
simulation" to "actually distributed": it spawns **one OS process per
:class:`~repro.graph.sharded.HostShard`**, each owning its shard's
kernel state (estimate table, support counters, cascade worklists — on
either :mod:`repro.sim.kernels` backend), with host-to-host estimate
batches carried over real ``multiprocessing`` channels and a
coordinator (the parent process) driving lockstep barriers and the
global termination check.

**Topology.** Per worker, two channels:

* a control :func:`multiprocessing.Pipe` to the coordinator — round
  commands down, per-round activity reports up (the same
  ACTIVE/INACTIVE reporting idea as the centralized master-slave
  mechanism of :mod:`repro.core.termination`, here carrying exact send
  counts so the coordinator replays the flat engine's quiescence test
  ``sends or pending`` instead of a quiet-window heuristic);
* an inbox :class:`multiprocessing.Queue` (multi-producer safe) into
  which *other workers* put estimate batches directly — host-to-host
  payloads never pass through the coordinator.

A batch is pickled **once, by the sender**, to a ``bytes`` payload
``(deliver_round, sender, slots, vals)``; the queue then only wraps
bytes, so the measured per-round pipe traffic
(:attr:`MultiProcessOneToManyEngine.pipe_bytes_per_round`) is the real
serialized volume and nothing is serialized twice. Batches are tagged
with the round that must fold them: queues interleave producers
arbitrarily, so a worker pulling its round-``r`` mail may receive a
fast neighbour's round-``r+1`` batch early and holds it back until the
coordinator opens that round.

**Semantics.** The engine is an exact replay of
:class:`~repro.sim.flat_many_engine.FlatOneToManyEngine` under
``mode="lockstep"`` — same coreness, executed rounds, per-round send
counts, per-host message counts and Figure-5 ``estimates_sent``, for
both communication policies and the ``p2p_filter`` extension, on either
kernel backend (each worker constructs its own backend instance, so
numpy state never crosses a pipe). Two properties make the parallel
replay exact:

* lockstep double-buffers mailboxes (messages sent in round ``r`` are
  folded in round ``r+1``), so within a round no host observes another
  host's writes — host activations are embarrassingly parallel;
* the flat engine fills a host's mailbox in activation order (pid
  ``0..H-1``); each worker restores exactly that order by sorting the
  round's batches by sender pid before folding (at most one batch per
  sender per round under every policy, so the sort is a total order).

``mode="peersim"`` is rejected loudly: PeerSim cycle semantics deliver
messages *immediately* in a randomized per-host activation order, so
each activation observes the previous one's writes — an inherently
sequential schedule that one-process-per-host cannot replay in
parallel. Use the in-process :class:`FlatOneToManyEngine` for peersim
runs.

**When is it selected?** ``run_one_to_many(engine="mp")`` routes here
via :mod:`repro.core.one_to_many_mp`; ``decompose("one-to-many-mp")``
and the CLI's ``--engine mp --workers N`` are the one-call forms. For
the graphs this repository benchmarks, the in-process flat engine is
faster — IPC serialization costs real time (see ``BENCH_mp.json``) —
so the mp engine is the fidelity/deployment path, not the throughput
path; the config layer warns when a run is too small to amortize the
process fan-out.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import time as _time
import traceback
from array import array

from repro.errors import ConfigurationError, ConvergenceError
from repro.graph.sharded import HostShard, ShardedCSR
from repro.sim.kernels import export_send_counts, resolve_backend
from repro.sim.metrics import SimulationStats

__all__ = ["MultiProcessOneToManyEngine", "START_METHODS"]

#: Start methods the engine accepts; ``"spawn"`` is the default — it is
#: the only method available on every platform and the one a real
#: deployment (fresh interpreter per worker) resembles. ``"fork"`` is
#: much cheaper to start on POSIX and produces identical results (the
#: protocol is deterministic), so test grids use it.
START_METHODS = ("spawn", "fork", "forkserver")

# control-plane opcodes (coordinator -> worker)
_INIT = 0  # run round 1 (Algorithm 3 on_init), emit initial batches
_STEP = 1  # run one activation round: fold expected mail, cascade, emit
_FINISH = 2  # report final per-shard results
_EXIT = 3  # leave the command loop


class _ShardWorker:
    """One shard's protocol state inside its worker process.

    A per-shard transcription of the :class:`FlatOneToManyEngine` round
    body: ``on_init`` / ``activate`` run the identical kernel calls
    (seed → cascade → emit, fold → cascade → emit) over this shard
    only, and ``_emit`` routes the resulting ``(ext-slot, value)``
    batches into the destination workers' inbox queues instead of
    in-process lists.
    """

    def __init__(
        self,
        host: int,
        shard: HostShard,
        num_hosts: int,
        communication: str,
        p2p_filter: bool,
        backend: str,
        infinity: int,
        inboxes,
    ) -> None:
        kb = resolve_backend(backend)
        self.kb = kb
        self.host = host
        self.shard = shard
        self.num_hosts = num_hosts
        self.broadcast = communication == "broadcast"
        self.p2p_filter = p2p_filter
        self.inboxes = inboxes
        self.offsets = kb.graph_array(shard.offsets)
        self.targets = kb.graph_array(shard.targets)
        self.watch_offsets = kb.graph_array(shard.watch_offsets)
        self.watch_targets = kb.graph_array(shard.watch_targets)
        self.est = kb.full(shard.n_owned + shard.n_ext)
        self.sup = kb.full(shard.n_owned)
        self.queued = kb.worklist_flags(shard.n_owned)
        self.changed_flag = bytearray(shard.n_owned)
        self.changed_list: list[int] = []
        self.scratch: list[int] = []
        self.infinity = infinity
        self.estimates_sent = 0
        self.host_counts = array("q", [0]) * num_hosts  # p2p scratch

    # -- transmit (Algorithm 3's S / Algorithm 5's per-host subsets),
    # identical accounting to FlatOneToManyEngine.emit; returns
    # (messages sent, {dest: 1}, serialized bytes) for the round report
    def _emit(self, deliver_round: int, updates: list) -> tuple:
        shard = self.shard
        neighbor_hosts = shard.neighbor_hosts
        if not updates or not neighbor_hosts:
            # nothing "has to be sent to another host" (Figure 5)
            return 0, {}, 0
        deliver = shard.deliver
        x = self.host
        out_slots: dict[int, list[int]] = {}
        out_vals: dict[int, list[int]] = {}
        if self.broadcast:
            # one transmission; every estimate counted once, every
            # neighbour host receives a message (even an empty one —
            # only border pairs are delivered, as in the flat engine)
            self.estimates_sent += len(updates)
            for u, k in updates:
                for y, s in deliver[u]:
                    out_slots.setdefault(y, []).append(s)
                    out_vals.setdefault(y, []).append(k)
            dests = neighbor_hosts
        elif not self.p2p_filter:
            # per-destination subsets; a message exists only where the
            # subset is non-empty, one overhead unit per (estimate,
            # destination) pair
            host_counts = self.host_counts
            touched: list[int] = []
            for u, k in updates:
                for y, s in deliver[u]:
                    out_slots.setdefault(y, []).append(s)
                    out_vals.setdefault(y, []).append(k)
                    c = host_counts[y]
                    if not c:
                        touched.append(y)
                    host_counts[y] = c + 1
            for y in touched:
                self.estimates_sent += host_counts[y]
                host_counts[y] = 0
            dests = touched
        else:
            # the §3.1.2-style host-level filter over stored externals
            est = self.est
            n_owned = shard.n_owned
            dest_slots = shard.dest_slots
            dests = []
            for y in neighbor_hosts:
                dest_get = dest_slots[y].get
                remote = shard.remote_slots[y]
                slots: list[int] = []
                vals: list[int] = []
                for u, k in updates:
                    s = dest_get(u)
                    if s is None:  # u has no neighbour on y
                        continue
                    if not any(est[n_owned + t] > k for t in remote[u]):
                        continue
                    slots.append(s)
                    vals.append(k)
                if slots:
                    self.estimates_sent += len(slots)
                    out_slots[y] = slots
                    out_vals[y] = vals
                    dests.append(y)
        per_dest: dict[int, int] = {}
        nbytes = 0
        inboxes = self.inboxes
        for y in dests:
            payload = pickle.dumps(
                (deliver_round, x, out_slots.get(y, ()), out_vals.get(y, ())),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            nbytes += len(payload)
            inboxes[y].put(payload)
            per_dest[y] = 1
        return len(dests), per_dest, nbytes

    # -- Algorithm 3 initialisation: degrees in, cascade, full send
    def on_init(self, deliver_round: int) -> tuple:
        shard = self.shard
        est = self.est
        n_owned = shard.n_owned
        dirty = self.kb.seed_shard(
            self.offsets, self.targets, n_owned, shard.n_ext,
            self.infinity, est, self.sup, self.queued,
        )
        if len(dirty):
            self.kb.cascade(
                self.offsets, self.targets, n_owned, est, self.sup,
                dirty, self.queued, self.changed_flag, self.changed_list,
                self.scratch,
            )
        # the initial message carries *all* owned estimates
        report = self._emit(
            deliver_round, [(u, int(est[u])) for u in range(n_owned)]
        )
        flags = self.changed_flag
        for u in self.changed_list:
            flags[u] = 0
        self.changed_list.clear()
        return report

    # -- one activation: fold the round's mail, cascade, transmit
    def activate(self, deliver_round: int, batches: list) -> tuple:
        shard = self.shard
        est = self.est
        n_owned = shard.n_owned
        if batches:
            # restore the flat engine's mailbox order: senders append
            # in activation (pid) order, one batch per sender per round
            batches.sort(key=lambda b: b[1])
            slots: list[int] = []
            vals: list[int] = []
            for _rnd, _sender, bslots, bvals in batches:
                slots.extend(bslots)
                vals.extend(bvals)
            dirty = self.kb.fold_mailbox(
                slots, vals, n_owned, est, self.sup,
                self.watch_offsets, self.watch_targets, self.queued,
            )
            if len(dirty):
                self.kb.cascade(
                    self.offsets, self.targets, n_owned, est, self.sup,
                    dirty, self.queued, self.changed_flag,
                    self.changed_list, self.scratch,
                )
        clist = self.changed_list
        if not clist:
            return 0, {}, 0
        report = self._emit(deliver_round, [(u, int(est[u])) for u in clist])
        flags = self.changed_flag
        for u in clist:
            flags[u] = 0
        clist.clear()
        return report

    def result(self) -> tuple:
        """Final per-shard payload: owned estimates + Figure-5 count."""
        est = self.est
        owned = [int(est[u]) for u in range(self.shard.n_owned)]
        return owned, self.estimates_sent


def _worker_main(
    host: int,
    shard_blob: bytes,
    num_hosts: int,
    communication: str,
    p2p_filter: bool,
    backend: str,
    infinity: int,
    conn,
    inbox,
    inboxes,
) -> None:
    """Worker process entry point (module-level: spawn-picklable).

    ``shard_blob`` is the coordinator's pickled :class:`HostShard` —
    shipped as bytes so the one serialization pass also yields the
    ``shard_payload_bytes`` metric (re-pickling a ``bytes`` payload for
    process startup costs only a memcpy).

    Runs the command loop: fold/cascade/emit on ``_STEP``, holding back
    early-arriving batches tagged for a later round. Any exception is
    reported up the control pipe as ``("error", traceback)`` so the
    coordinator can fail loudly instead of hanging.
    """
    try:
        worker = _ShardWorker(
            host, pickle.loads(shard_blob), num_hosts, communication,
            p2p_filter, backend, infinity, inboxes,
        )
        held: dict[int, list] = {}
        while True:
            cmd = conn.recv()
            op = cmd[0]
            if op == _INIT:
                sent, per_dest, nbytes = worker.on_init(cmd[1])
                conn.send(("done", sent, per_dest, nbytes))
            elif op == _STEP:
                rnd, expect = cmd[1], cmd[2]
                batches = held.pop(rnd, [])
                while len(batches) < expect:
                    msg = pickle.loads(inbox.get())
                    if msg[0] == rnd:
                        batches.append(msg)
                    else:  # a fast neighbour already sent next-round mail
                        held.setdefault(msg[0], []).append(msg)
                sent, per_dest, nbytes = worker.activate(rnd + 1, batches)
                conn.send(("done", sent, per_dest, nbytes))
            elif op == _FINISH:
                conn.send(("result",) + worker.result())
            elif op == _EXIT:
                break
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown opcode {op!r}")
    except (EOFError, KeyboardInterrupt):  # coordinator went away
        pass
    except Exception:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass


class MultiProcessOneToManyEngine:
    """Algorithms 3-5 with one OS process per :class:`HostShard`.

    Parameters
    ----------
    sharded:
        The partitioned graph; needs ``num_hosts >= 2`` (a single-host
        "distribution" has nobody to message — use the in-process
        engines).
    communication:
        ``"broadcast"`` (Algorithm 3) or ``"p2p"`` (Algorithm 5).
    mode:
        Only ``"lockstep"`` — the barrier-synchronous discipline a
        process-per-host deployment can execute in parallel (see the
        module docstring for why peersim cannot be).
    p2p_filter / max_rounds / strict / backend:
        As in :class:`~repro.sim.flat_many_engine.FlatOneToManyEngine`;
        ``backend`` is resolved *by name inside each worker*, so numpy
        arrays never cross a pipe.
    start_method:
        ``multiprocessing`` start method (default ``"spawn"``).
    reply_timeout:
        Seconds the coordinator waits for any single worker round
        report before declaring the fleet wedged (a real barrier needs
        a failure detector). ``None`` means 300 — generous for CI
        boxes; raise it (``OneToManyConfig.mp_reply_timeout``) when a
        single round's fold/cascade legitimately takes longer.

    After :meth:`run`: :meth:`coreness`, :attr:`estimates_sent` (per
    host), :attr:`pipe_bytes_per_round` / :attr:`pipe_bytes_total` (the
    serialized host-to-host traffic; control-plane chatter excluded).
    """

    def __init__(
        self,
        sharded: ShardedCSR,
        communication: str = "broadcast",
        mode: str = "lockstep",
        seed: "int | None" = 0,
        p2p_filter: bool = False,
        max_rounds: int = 1_000_000,
        strict: bool = True,
        backend: str = "stdlib",
        start_method: str = "spawn",
        reply_timeout: "float | None" = None,
    ) -> None:
        if communication not in ("broadcast", "p2p"):
            raise ConfigurationError(
                f"unknown communication policy {communication!r}; "
                "options: ['broadcast', 'p2p']"
            )
        if p2p_filter and communication != "p2p":
            raise ConfigurationError("p2p_filter requires the p2p policy")
        if mode != "lockstep":
            raise ConfigurationError(
                f"engine='mp' cannot replay mode={mode!r}: peersim "
                "delivers messages immediately in a randomized per-host "
                "activation order, which is inherently sequential across "
                "processes; use mode='lockstep' (or the in-process "
                "engine='flat' for peersim runs)"
            )
        if sharded.num_hosts < 2:
            raise ConfigurationError(
                "engine='mp' spawns one OS process per host shard and "
                f"needs num_hosts >= 2, got {sharded.num_hosts}; a "
                "single host exchanges no messages — use engine='flat'"
            )
        if start_method not in START_METHODS:
            raise ConfigurationError(
                f"unknown start method {start_method!r}; "
                f"options: {list(START_METHODS)}"
            )
        # resolve eagerly so an unknown name / missing numpy fails in
        # the parent, before any process is spawned; workers re-resolve
        # by name
        self.backend_name = resolve_backend(backend).name
        self.sharded = sharded
        self.communication = communication
        self.mode = mode
        self.seed = seed  # accepted for signature parity; lockstep never draws
        self.p2p_filter = p2p_filter
        self.max_rounds = max_rounds
        self.strict = strict
        self.start_method = start_method
        if reply_timeout is not None and reply_timeout <= 0:
            raise ConfigurationError(
                f"reply_timeout must be positive, got {reply_timeout!r}"
            )
        self.reply_timeout = 300.0 if reply_timeout is None else reply_timeout
        self.stats = SimulationStats()
        #: Figure-5 overhead numerator per host (filled by :meth:`run`).
        self.estimates_sent: array = array("q")
        #: Serialized host-to-host bytes per round (index 0 == round 1).
        self.pipe_bytes_per_round: list[int] = []
        self.pipe_bytes_total: int = 0
        #: Pickled size of each worker's shard payload (what start-up
        #: serialization actually shipped) — the cost the config-layer
        #: guard warns about.
        self.shard_payload_bytes: list[int] = []
        self._owned_est: list[list[int]] = []

    # ------------------------------------------------------------------
    def coreness(self) -> dict[int, int]:
        """``{original node id: coreness}`` after :meth:`run`."""
        ids = self.sharded.csr.ids
        out: dict[int, int] = {}
        for shard, owned_est in zip(self.sharded.shards, self._owned_est):
            owned_global = shard.owned_global
            for u, value in enumerate(owned_est):
                out[ids[owned_global[u]]] = value
        return out

    def estimates_sent_total(self) -> int:
        """Sum of the per-host Figure-5 overhead numerators."""
        return sum(self.estimates_sent)

    # ------------------------------------------------------------------
    def _recv(self, x: int) -> tuple:
        """One worker reply, with a failure detector instead of a hang."""
        conn = self._conns[x]
        if not conn.poll(self.reply_timeout):
            raise RuntimeError(
                f"mp worker {x} sent no reply within "
                f"{self.reply_timeout:.0f}s (exitcode="
                f"{self._procs[x].exitcode}); the shard fleet is wedged"
            )
        try:
            reply = conn.recv()
        except EOFError:
            raise RuntimeError(
                f"mp worker {x} died without a reply (exitcode="
                f"{self._procs[x].exitcode})"
            ) from None
        if reply[0] == "error":
            raise RuntimeError(
                f"mp worker {x} failed:\n{reply[1]}"
            )
        return reply

    def _shutdown(self, graceful: bool) -> None:
        # tolerates partial startup: _procs only ever holds *started*
        # workers, _conns may be one entry longer if Pipe() succeeded
        # but Process.start() did not
        for x, proc in enumerate(self._procs):
            if graceful and proc.is_alive():
                try:
                    self._conns[x].send((_EXIT,))
                except (BrokenPipeError, OSError):
                    pass
        for proc in self._procs:
            proc.join(timeout=5.0 if graceful else 0.5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        for conn in self._conns:
            conn.close()
        for inbox in self._inboxes:
            # queues are fully drained by the expect-count protocol;
            # cancel_join_thread keeps an abort from blocking on the
            # feeder thread of a queue that still buffers data
            inbox.cancel_join_thread()
            inbox.close()

    # ------------------------------------------------------------------
    def run(self) -> SimulationStats:
        """Run to quiescence (or ``max_rounds``); returns the stats."""
        # deferred for the same import-cycle reason as the flat engine
        from repro.core.one_to_many import INFINITY_INT

        start = _time.perf_counter()
        stats = self.stats
        sharded = self.sharded
        num_hosts = sharded.num_hosts
        ctx = mp.get_context(self.start_method)

        self._inboxes: list = []
        self._conns = []
        self._procs = []
        self.shard_payload_bytes = []

        sent_msgs = array("q", [0]) * num_hosts
        pipe_bytes = self.pipe_bytes_per_round = []
        all_hosts = range(num_hosts)
        try:
            # -- spawn the fleet (inside the cleanup scope: a failure
            # on worker k must not leak workers 0..k-1). Shards are
            # pickled exactly once — the blob is both the wire payload
            # and the shard_payload_bytes metric.
            self._inboxes.extend(ctx.Queue() for _ in range(num_hosts))
            for x, shard in enumerate(sharded.shards):
                blob = pickle.dumps(shard, protocol=pickle.HIGHEST_PROTOCOL)
                self.shard_payload_bytes.append(len(blob))
                parent_conn, child_conn = ctx.Pipe()
                self._conns.append(parent_conn)
                proc = ctx.Process(
                    target=_worker_main,
                    args=(
                        x, blob, num_hosts, self.communication,
                        self.p2p_filter, self.backend_name, INFINITY_INT,
                        child_conn, self._inboxes[x], self._inboxes,
                    ),
                    daemon=True,
                    name=f"kcore-shard-{x}",
                )
                proc.start()
                self._procs.append(proc)
                child_conn.close()

            # -- round 1: Algorithm 3 on_init everywhere (lockstep has
            # no intra-round delivery, so the barrier is the only order)
            rnd = 1
            for x in all_hosts:
                self._conns[x].send((_INIT, rnd + 1))
            sends = 0
            round_bytes = 0
            expect = [0] * num_hosts  # per-dest counts for the next round
            for x in all_hosts:
                _tag, sent, per_dest, nbytes = self._recv(x)
                sends += sent
                sent_msgs[x] += sent
                round_bytes += nbytes
                for y, count in per_dest.items():
                    expect[y] += count
            pending = sends
            stats.sends_per_round.append(sends)
            pipe_bytes.append(round_bytes)
            if sends:
                stats.execution_time += 1

            while sends or pending:
                if rnd >= self.max_rounds:
                    stats.converged = False
                    stats.rounds_executed = rnd
                    break
                rnd += 1
                for x in all_hosts:
                    self._conns[x].send((_STEP, rnd, expect[x]))
                delivered = sum(expect)
                expect = [0] * num_hosts
                sends = 0
                round_bytes = 0
                for x in all_hosts:
                    _tag, sent, per_dest, nbytes = self._recv(x)
                    sends += sent
                    sent_msgs[x] += sent
                    round_bytes += nbytes
                    for y, count in per_dest.items():
                        expect[y] += count
                pending += sends - delivered
                stats.sends_per_round.append(sends)
                pipe_bytes.append(round_bytes)
                if sends:
                    stats.execution_time += 1
            else:
                stats.rounds_executed = rnd

            # -- gather: owned estimates + Figure-5 counters
            for x in all_hosts:
                self._conns[x].send((_FINISH,))
            self._owned_est = []
            estimates_sent = self.estimates_sent = array("q")
            for x in all_hosts:
                _tag, owned, est_sent = self._recv(x)
                self._owned_est.append(owned)
                estimates_sent.append(est_sent)
        except BaseException:
            self._shutdown(graceful=False)
            raise
        self._shutdown(graceful=True)

        export_send_counts(stats, sent_msgs)
        self.pipe_bytes_total = sum(pipe_bytes)
        stats.wall_seconds = _time.perf_counter() - start
        if not stats.converged and self.strict:
            raise ConvergenceError(stats.rounds_executed)
        return stats
