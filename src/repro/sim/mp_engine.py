"""Multi-process execution of the one-to-many protocol.

Every engine before this one simulates the paper's hosts inside a
single Python process. This module is the first step from "fast
simulation" to "actually distributed": it spawns **one OS process per
:class:`~repro.graph.sharded.HostShard`**, each owning its shard's
kernel state (estimate table, support counters, cascade worklists — on
either :mod:`repro.sim.kernels` backend), with host-to-host estimate
batches carried over real ``multiprocessing`` channels and a
coordinator (the parent process) driving lockstep barriers and the
global termination check.

**Topology.** Per worker, two channels:

* a control :func:`multiprocessing.Pipe` to the coordinator — round
  commands down, per-round activity reports up (the same
  ACTIVE/INACTIVE reporting idea as the centralized master-slave
  mechanism of :mod:`repro.core.termination`, here carrying exact send
  counts so the coordinator replays the flat engine's quiescence test
  ``sends or pending`` instead of a quiet-window heuristic);
* an inbox :class:`multiprocessing.Queue` (multi-producer safe) into
  which *other workers* put estimate batches directly — host-to-host
  payloads never pass through the coordinator.

A batch is pickled **once, by the sender**, to a ``bytes`` payload
``(deliver_round, sender, slots, vals)``; the queue then only wraps
bytes, so the measured per-round pipe traffic
(:attr:`MultiProcessOneToManyEngine.pipe_bytes_per_round`) is the real
serialized volume and nothing is serialized twice. Batches are tagged
with the round that must fold them: queues interleave producers
arbitrarily, so a worker pulling its round-``r`` mail may receive a
fast neighbour's round-``r+1`` batch early and holds it back until the
coordinator opens that round.

**Transports.** The queue path above is the default
(``transport="queue"``). ``transport="shm"`` keeps the same topology
and protocol but moves the estimate hot path into per-worker
double-buffered mailbox rings in ``multiprocessing.shared_memory``
segments (:mod:`repro.sim.shm_transport`): senders write fixed-width
``(round, dest_slot, estimate)`` records directly into the destination
worker's inbound segment and the lockstep barrier is the buffer flip —
zero pickling, no feeder threads, no blocking receives (by the time a
round is dispatched, all of its ring writes have completed). Rings are
sized from the partition's :meth:`~repro.graph.sharded.ShardedCSR.
cut_matrix` upper bounds; a batch that exceeds its ring's capacity
(possible only when tests shrink it via ``shm_max_records``) takes a
loud-fallback *overflow lane* over the existing queue path, counted in
:attr:`MultiProcessOneToManyEngine.shm_overflow_batches`. The receive
path drains the ring first, then the queue, under the same round-tag +
per-sender dedupe — so ring mail, overflow mail and recovery re-sends
compose, and ``pipe_bytes_total`` measures exactly the pickled residue
(zero on the happy path). Recovery is unchanged in shape: segments are
coordinator-owned, so they survive a worker's death and the
replacement finds the stuck round's rings intact; resend buffers hold
raw ``(round, slots, vals)`` tuples that survivors pickle on demand
over the queue lane (ring tags from replayed rounds are stale by
construction, so replays are fed by the queue exactly as before).
Checkpoint snapshots still drain expected mail — from the ring and the
queue both — so ``CheckpointWriter`` and ``resume_from_checkpoint``
work identically on either transport.

**Semantics.** The engine is an exact replay of
:class:`~repro.sim.flat_many_engine.FlatOneToManyEngine` under
``mode="lockstep"`` — same coreness, executed rounds, per-round send
counts, per-host message counts and Figure-5 ``estimates_sent``, for
both communication policies and the ``p2p_filter`` extension, on either
kernel backend (each worker constructs its own backend instance, so
numpy state never crosses a pipe). Two properties make the parallel
replay exact:

* lockstep double-buffers mailboxes (messages sent in round ``r`` are
  folded in round ``r+1``), so within a round no host observes another
  host's writes — host activations are embarrassingly parallel;
* the flat engine fills a host's mailbox in activation order (pid
  ``0..H-1``); each worker restores exactly that order by sorting the
  round's batches by sender pid before folding (at most one batch per
  sender per round under every policy, so the sort is a total order).

``mode="peersim"`` is rejected loudly: PeerSim cycle semantics deliver
messages *immediately* in a randomized per-host activation order, so
each activation observes the previous one's writes — an inherently
sequential schedule that one-process-per-host cannot replay in
parallel. Use the in-process :class:`FlatOneToManyEngine` for peersim
runs.

**Fault tolerance.** The protocol is self-stabilizing per host —
estimates only decrease, and any host can recompute its state from its
shard plus its neighbours' estimate stream — which makes recovery a
*replay* problem rather than a consensus problem. Three mechanisms
build on that (all off unless configured; see
``docs/architecture.md``, "Failure model and recovery"):

* **checkpointing** (:class:`~repro.sim.checkpoint.CheckpointPolicy`):
  at the barrier after every k-th round each worker snapshots its
  kernel state and round-tagged mailbox backlog (the expected next
  round's mail is drained into the snapshot first, so nothing lives
  only inside a queue) and the coordinator commits an atomic,
  checksummed manifest — either a complete checkpoint exists or none
  does;
* **single-worker recovery**: when the failure detector spots a lost
  worker (closed control pipe, nonzero exitcode, or a reply timeout —
  dead and wedged look the same from the barrier), the coordinator
  re-spawns it from the last checkpoint (round 0 = a fresh shard when
  none exists yet), has the survivors re-put the missed estimate
  batches from their per-recipient **resend buffers** (bounded: pruned
  at every checkpoint), lets the replacement deterministically replay
  the missed rounds with transmission suppressed, then re-executes the
  stuck round for real and resumes the lockstep barrier. Receivers
  deduplicate by ``(round, sender)`` — at most one batch per sender
  per round under every policy — so replayed re-sends are harmless.
  The recovered run is bit-identical to a fault-free one;
* **whole-fleet resume**
  (:func:`repro.core.one_to_many_mp.resume_from_checkpoint`): after a
  coordinator death, a new coordinator restores every worker from the
  checkpoint directory and continues the loop — the snapshot's drained
  mailbox backlog is exactly the in-flight state a restart needs.

Failures are injected deterministically through
:class:`~repro.sim.faults.FaultPlan` so every recovery path above runs
in CI. Out of scope (detected, reported loudly, not recovered
in-flight): two workers lost at the *same* barrier, a loss during the
checkpoint or result-gathering barriers, and a worker that dies midway
through a queue ``put`` holding the queue lock — use
``resume_from_checkpoint`` for those.

**When is it selected?** ``run_one_to_many(engine="mp")`` routes here
via :mod:`repro.core.one_to_many_mp`; ``decompose("one-to-many-mp")``
and the CLI's ``--engine mp --workers N`` are the one-call forms. For
the graphs this repository benchmarks, the in-process flat engine is
faster — IPC serialization costs real time (see ``BENCH_mp.json``) —
so the mp engine is the fidelity/deployment path, not the throughput
path; the config layer warns when a run is too small to amortize the
process fan-out.
"""

from __future__ import annotations

import multiprocessing as mp
import os as _os
import pickle
import time as _time
import traceback
from array import array
from datetime import datetime
from queue import Empty

from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    FleetTimeoutError,
)
from repro.graph.sharded import HostShard, ShardedCSR
from repro.sim.checkpoint import CheckpointPolicy, CheckpointWriter
from repro.sim.faults import KILL_EXIT_CODE, FaultPlan, WorkerFaults
from repro.sim.kernels import export_send_counts, resolve_backend
from repro.sim.metrics import SimulationStats
from repro.sim.shm_transport import (
    attach_mailbox,
    build_shm_layout,
    create_segments,
)
from repro.sim.tracing import diff_round, reference_slice
from repro.telemetry.merge import merge_worker_buffers
from repro.telemetry.spans import NULL_TRACER, Tracer, resolve_tracer

__all__ = [
    "MultiProcessOneToManyEngine",
    "START_METHODS",
    "TRANSPORTS",
    "default_reply_timeout",
]

#: Start methods the engine accepts; ``"spawn"`` is the default — it is
#: the only method available on every platform and the one a real
#: deployment (fresh interpreter per worker) resembles. ``"fork"`` is
#: much cheaper to start on POSIX and produces identical results (the
#: protocol is deterministic), so test grids use it.
START_METHODS = ("spawn", "fork", "forkserver")

#: Estimate transports: pickled batches over per-worker queues
#: (default) or zero-copy mailbox rings in shared memory (see the
#: module docstring and :mod:`repro.sim.shm_transport`).
TRANSPORTS = ("queue", "shm")

# control-plane opcodes (coordinator -> worker)
_INIT = 0  # run round 1 (Algorithm 3 on_init), emit initial batches
_STEP = 1  # run one activation round: fold expected mail, cascade, emit
_FINISH = 2  # report final per-shard results
_EXIT = 3  # leave the command loop
_CHECKPOINT = 4  # drain next-round mail into the backlog, snapshot state
_RESEND = 5  # re-put buffered payloads for one recipient (recovery)
_REPLAY = 6  # deterministically re-execute missed rounds (recovery)
_TELEMETRY = 7  # ship the worker-local span buffer (gather time)


def default_reply_timeout(num_nodes: int, workers: int) -> float:
    """Round-aware failure-detector default, in seconds.

    A barrier reply is late only relative to how much per-round work a
    worker legitimately has, which scales with its owned-node count —
    a flat constant either hangs small runs for minutes or kills big
    ones mid-fold. 60 s of floor (spawn + import on a loaded CI box)
    plus 2 ms per owned node per worker: ~70 s at 20k/4 workers, ~560 s
    at 1M/4.
    """
    nodes_per_worker = num_nodes / max(1, workers)
    return 60.0 + 0.002 * nodes_per_worker


class _WorkerLost(Exception):
    """Internal: the failure detector flagged one worker at a barrier."""

    def __init__(self, worker: int, reason: str, wedged: bool) -> None:
        super().__init__(reason)
        self.worker = worker
        self.reason = reason
        #: True when the process was still alive (stalled / lost a
        #: message) — it missed the reply timeout rather than dying.
        self.wedged = wedged


class _ShardWorker:
    """One shard's protocol state inside its worker process.

    A per-shard transcription of the :class:`FlatOneToManyEngine` round
    body: ``on_init`` / ``activate`` run the identical kernel calls
    (seed → cascade → emit, fold → cascade → emit) over this shard
    only, and ``_emit`` routes the resulting ``(ext-slot, value)``
    batches into the destination workers' inbox queues instead of
    in-process lists.
    """

    def __init__(
        self,
        host: int,
        shard: HostShard,
        num_hosts: int,
        communication: str,
        p2p_filter: bool,
        backend: str,
        infinity: int,
        inboxes,
        resilient: bool = False,
        faults: "WorkerFaults | None" = None,
        tracer=NULL_TRACER,
    ) -> None:
        kb = resolve_backend(backend)
        self.kb = kb
        self.host = host
        self.shard = shard
        self.num_hosts = num_hosts
        self.broadcast = communication == "broadcast"
        self.p2p_filter = p2p_filter
        self.inboxes = inboxes
        self.offsets = kb.graph_array(shard.offsets)
        self.targets = kb.graph_array(shard.targets)
        self.watch_offsets = kb.graph_array(shard.watch_offsets)
        self.watch_targets = kb.graph_array(shard.watch_targets)
        self.est = kb.full(shard.n_owned + shard.n_ext)
        self.sup = kb.full(shard.n_owned)
        self.queued = kb.worklist_flags(shard.n_owned)
        self.changed_flag = bytearray(shard.n_owned)
        self.changed_list: list[int] = []
        self.scratch: list[int] = []
        self.infinity = infinity
        self.estimates_sent = 0
        self.host_counts = array("q", [0]) * num_hosts  # p2p scratch
        self.resilient = resilient
        self.faults = faults
        #: batches that arrived early, keyed by their delivery round
        self.held: dict[int, list] = {}
        #: rounds whose mail is already folded — late duplicates of a
        #: folded round (stale queue content + recovery re-sends) are
        #: discarded on receipt
        self.folded_through = 0
        #: per-recipient resend buffer, kept only when ``resilient`` and
        #: pruned at every checkpoint — the replay window a recovery can
        #: need. Queue transport buffers the pickled payloads
        #: (``{dest: [(deliver_round, payload), ...]}``); shm transport
        #: buffers raw ``(deliver_round, slots, vals)`` tuples that the
        #: ``_RESEND`` handler pickles on demand (re-sends always travel
        #: the queue lane — ring buffers from replayed rounds are long
        #: overwritten or stale-tagged)
        self.resend: dict[int, list] = {}
        #: shm transport only: the worker's
        #: :class:`~repro.sim.shm_transport.ShmMailbox` (attached by
        #: ``_worker_main`` once the backend is resolved). ``None``
        #: selects the queue transport. A process-local OS handle —
        #: never pickled, never part of a snapshot.
        self.mailbox = None
        #: worker-local span buffer (pure observer; NULL_TRACER when
        #: telemetry is off, so the hot path pays one attribute lookup)
        self.tracer = tracer
        #: TraceRecorder feeding state: reference slices over the owned
        #: nodes and the previous round's values (None = not recording)
        self.record_refs: "list[list[int] | None] | None" = None
        self.record_prev: "list[int] | None" = None

    def enable_recording(
        self, refs: "list[list[int] | None]", restored: bool
    ) -> None:
        """Arm the per-round array diff shipped with the round reports.

        ``prev`` after any recorded round equals the owned estimate
        slice exactly (the diff copies every changed value), so a
        restored worker reseeds it from the adopted snapshot's
        estimates; a fresh worker seeds ``-1`` so round 1 counts every
        node (the observer path's first-observation rule).
        """
        self.record_refs = refs
        if restored:
            est = self.est
            self.record_prev = [int(est[u]) for u in range(self.shard.n_owned)]
        else:
            self.record_prev = [-1] * self.shard.n_owned

    def record_diff(self) -> "tuple | None":
        """One round's ``(changed, errors)`` aggregate, or ``None``."""
        if self.record_refs is None:
            return None
        return diff_round(self.est, self.record_prev, self.record_refs)

    def resync_record_prev(self) -> None:
        """Re-align ``prev`` with the estimates after a recovery replay
        (equivalent to having diffed every replayed round)."""
        if self.record_prev is not None:
            est = self.est
            self.record_prev = [int(est[u]) for u in range(self.shard.n_owned)]

    def _inbox_get(self, inbox) -> bytes:
        """Receive one payload from this worker's inbox.

        With recovery enabled the wait is a non-blocking poll loop
        instead of a blocking ``get()``: a blocked ``get`` holds the
        queue's reader lock for its whole wait, so terminating a wedged
        worker there would poison the lock for its replacement (which
        reuses the queue). Polling holds the lock only for microseconds
        per probe, so the coordinator's ``terminate()`` lands in the
        sleep with overwhelming probability; the residual window is the
        documented out-of-scope kill-inside-a-queue-operation case.
        """
        if not self.resilient:
            return inbox.get()
        while True:
            try:
                return inbox.get_nowait()
            except Empty:
                _time.sleep(0.001)

    # ------------------------------------------------------------------
    # state snapshot / restore (checkpointing + worker recovery)
    # ------------------------------------------------------------------
    def snapshot(self) -> bytes:
        """Barrier-point state: tables, Figure-5 counter, mail backlog.

        Called only between rounds, where the cascade scratch
        (``queued`` / ``changed_*``) is empty by invariant and the
        resend buffers have just been pruned — so estimate/support
        tables, the overhead counter, the fold watermark and the held
        mailbox backlog are the *whole* state.
        """
        return pickle.dumps(
            (
                self.folded_through,
                self.est,
                self.sup,
                self.estimates_sent,
                self.held,
            ),
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    def restore(self, blob: bytes) -> None:
        """Adopt a :meth:`snapshot` (same backend, per the manifest)."""
        (
            self.folded_through,
            self.est,
            self.sup,
            self.estimates_sent,
            self.held,
        ) = pickle.loads(blob)

    # -- transmit (Algorithm 3's S / Algorithm 5's per-host subsets),
    # identical accounting to FlatOneToManyEngine.emit; returns
    # (messages sent, {dest: 1}, pickled bytes, ring bytes, overflow
    # batches) for the round report. ``transport=False`` (recovery
    # replay) keeps every counter and the resend buffer exact but skips
    # the physical queue puts / ring writes — the live fleet already
    # received these batches.
    def _emit(self, deliver_round: int, updates: list, transport: bool = True) -> tuple:
        shard = self.shard
        neighbor_hosts = shard.neighbor_hosts
        if not updates or not neighbor_hosts:
            # nothing "has to be sent to another host" (Figure 5)
            return 0, {}, 0, 0, 0
        deliver = shard.deliver
        x = self.host
        out_slots: dict[int, list[int]] = {}
        out_vals: dict[int, list[int]] = {}
        if self.broadcast:
            # one transmission; every estimate counted once, every
            # neighbour host receives a message (even an empty one —
            # only border pairs are delivered, as in the flat engine)
            self.estimates_sent += len(updates)
            for u, k in updates:
                for y, s in deliver[u]:
                    out_slots.setdefault(y, []).append(s)
                    out_vals.setdefault(y, []).append(k)
            dests = neighbor_hosts
        elif not self.p2p_filter:
            # per-destination subsets; a message exists only where the
            # subset is non-empty, one overhead unit per (estimate,
            # destination) pair
            host_counts = self.host_counts
            touched: list[int] = []
            for u, k in updates:
                for y, s in deliver[u]:
                    out_slots.setdefault(y, []).append(s)
                    out_vals.setdefault(y, []).append(k)
                    c = host_counts[y]
                    if not c:
                        touched.append(y)
                    host_counts[y] = c + 1
            for y in touched:
                self.estimates_sent += host_counts[y]
                host_counts[y] = 0
            dests = touched
        else:
            # the §3.1.2-style host-level filter over stored externals
            est = self.est
            n_owned = shard.n_owned
            dest_slots = shard.dest_slots
            dests = []
            for y in neighbor_hosts:
                dest_get = dest_slots[y].get
                remote = shard.remote_slots[y]
                slots: list[int] = []
                vals: list[int] = []
                for u, k in updates:
                    s = dest_get(u)
                    if s is None:  # u has no neighbour on y
                        continue
                    if not any(est[n_owned + t] > k for t in remote[u]):
                        continue
                    slots.append(s)
                    vals.append(k)
                if slots:
                    self.estimates_sent += len(slots)
                    out_slots[y] = slots
                    out_vals[y] = vals
                    dests.append(y)
        per_dest: dict[int, int] = {}
        nbytes = 0
        inboxes = self.inboxes
        faults = self.faults
        mailbox = self.mailbox
        if mailbox is None:
            with self.tracer.span("emit.serialize", dests=len(dests)) as span:
                for y in dests:
                    payload = pickle.dumps(
                        (deliver_round, x, out_slots.get(y, ()), out_vals.get(y, ())),
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                    nbytes += len(payload)
                    if self.resilient:
                        self.resend.setdefault(y, []).append((deliver_round, payload))
                    if transport:
                        # the emitting round is deliver_round - 1 (lockstep)
                        if (
                            faults is None
                            or faults.on_transport(deliver_round - 1, y) != "drop"
                        ):
                            inboxes[y].put(payload)
                    per_dest[y] = 1
                span.note(nbytes=nbytes)
            return len(dests), per_dest, nbytes, 0, 0
        # shm transport: write each batch straight into the destination
        # ring; a batch over its ring's capacity takes the pickled
        # overflow lane over the same queue the queue transport uses
        shm_nbytes = 0
        overflow = 0
        with self.tracer.span("emit.shm_write", dests=len(dests)) as span:
            for y in dests:
                slots = out_slots.get(y, ())
                vals = out_vals.get(y, ())
                if self.resilient:
                    self.resend.setdefault(y, []).append(
                        (deliver_round, slots, vals)
                    )
                if transport and (
                    faults is None
                    or faults.on_transport(deliver_round - 1, y) != "drop"
                ):
                    written = mailbox.write(y, deliver_round, slots, vals)
                    if written is None:
                        payload = pickle.dumps(
                            (deliver_round, x, slots, vals),
                            protocol=pickle.HIGHEST_PROTOCOL,
                        )
                        nbytes += len(payload)
                        overflow += 1
                        inboxes[y].put(payload)
                    else:
                        shm_nbytes += written
                per_dest[y] = 1
            span.note(nbytes=shm_nbytes, overflow=overflow)
        return len(dests), per_dest, nbytes, shm_nbytes, overflow

    def prune_resend(self, through_round: int) -> None:
        """Drop buffered payloads a post-checkpoint replay cannot need."""
        for y, buffered in list(self.resend.items()):
            kept = [item for item in buffered if item[0] > through_round]
            if kept:
                self.resend[y] = kept
            else:
                del self.resend[y]

    # -- Algorithm 3 initialisation: degrees in, cascade, full send
    def on_init(self, deliver_round: int, transport: bool = True) -> tuple:
        shard = self.shard
        est = self.est
        n_owned = shard.n_owned
        with self.tracer.span("kernel.seed_shard"):
            dirty = self.kb.seed_shard(
                self.offsets, self.targets, n_owned, shard.n_ext,
                self.infinity, est, self.sup, self.queued,
            )
        if len(dirty):
            with self.tracer.span("kernel.cascade"):
                self.kb.cascade(
                    self.offsets, self.targets, n_owned, est, self.sup,
                    dirty, self.queued, self.changed_flag, self.changed_list,
                    self.scratch,
                )
        # the initial message carries *all* owned estimates
        report = self._emit(
            deliver_round, [(u, int(est[u])) for u in range(n_owned)],
            transport=transport,
        )
        flags = self.changed_flag
        for u in self.changed_list:
            flags[u] = 0
        self.changed_list.clear()
        return report

    # -- one activation: fold the round's mail, cascade, transmit
    def activate(
        self, deliver_round: int, batches: list, transport: bool = True
    ) -> tuple:
        shard = self.shard
        est = self.est
        n_owned = shard.n_owned
        if batches:
            # restore the flat engine's mailbox order: senders append
            # in activation (pid) order, one batch per sender per round
            batches.sort(key=lambda b: b[1])
            slots: list[int] = []
            vals: list[int] = []
            for _rnd, _sender, bslots, bvals in batches:
                slots.extend(bslots)
                vals.extend(bvals)
            with self.tracer.span("kernel.fold_mailbox", batches=len(batches)):
                dirty = self.kb.fold_mailbox(
                    slots, vals, n_owned, est, self.sup,
                    self.watch_offsets, self.watch_targets, self.queued,
                )
            if len(dirty):
                with self.tracer.span("kernel.cascade"):
                    self.kb.cascade(
                        self.offsets, self.targets, n_owned, est, self.sup,
                        dirty, self.queued, self.changed_flag,
                        self.changed_list, self.scratch,
                    )
        clist = self.changed_list
        if not clist:
            return 0, {}, 0, 0, 0
        report = self._emit(
            deliver_round, [(u, int(est[u])) for u in clist],
            transport=transport,
        )
        flags = self.changed_flag
        for u in clist:
            flags[u] = 0
        clist.clear()
        return report

    # ------------------------------------------------------------------
    # receive path: round-tagged, held-back, deduplicated
    # ------------------------------------------------------------------
    def pull(self, inbox, rnd: int, expect: int) -> list:
        """Collect the ``expect`` distinct round-``rnd`` batches.

        Early mail for later rounds is held back; mail for rounds
        already folded (stale queue content from before a worker died,
        or a recovery re-send the backlog already covered) is
        discarded; and within a round at most one batch per sender is
        kept — the dedup that makes recovery re-sends idempotent.

        On the shm transport the ring is drained first — its tags are
        exact (parity double-buffering means a region's tag equals
        ``rnd`` iff it carries this round's batch), so ring reads never
        block — and the queue loop then covers only the residue:
        overflow batches and recovery re-sends. The per-sender dedupe
        spans both sources, so a re-send duplicating a ring batch (or
        a checkpoint backlog) is discarded exactly like before.
        """
        held = self.held
        batches = held.pop(rnd, [])
        mailbox = self.mailbox
        if mailbox is not None and len(batches) < expect:
            with self.tracer.span("mail.shm_read", round=rnd) as span:
                found = 0
                for sender, slots, vals in mailbox.read(rnd):
                    if any(b[1] == sender for b in batches):
                        continue
                    batches.append((rnd, sender, slots, vals))
                    found += 1
                span.note(batches=found)
        while len(batches) < expect:
            msg = pickle.loads(self._inbox_get(inbox))
            r = msg[0]
            if r <= self.folded_through:
                continue  # duplicate of mail this state already folded
            bucket = batches if r == rnd else held.setdefault(r, [])
            sender = msg[1]
            if any(b[1] == sender for b in bucket):
                continue  # duplicate within the round (recovery re-send)
            bucket.append(msg)
        self.folded_through = rnd
        return batches

    def absorb(self, inbox, rnd: int, expect: int) -> None:
        """Drain the ``expect`` round-``rnd`` batches into the backlog.

        The checkpoint barrier uses this so a snapshot carries every
        in-flight batch — afterwards the queues are empty and the
        snapshot is self-contained. On the shm transport the ring is
        drained into the backlog first (same dedupe as :meth:`pull`):
        in-flight mail must live in the snapshot, not in a segment a
        whole-fleet resume would re-create from scratch.
        """
        held = self.held
        bucket = held.setdefault(rnd, [])
        mailbox = self.mailbox
        if mailbox is not None and len(bucket) < expect:
            for sender, slots, vals in mailbox.read(rnd):
                if any(b[1] == sender for b in bucket):
                    continue
                bucket.append((rnd, sender, slots, vals))
        while len(bucket) < expect:
            msg = pickle.loads(self._inbox_get(inbox))
            r = msg[0]
            if r <= self.folded_through:
                continue
            dest = bucket if r == rnd else held.setdefault(r, [])
            sender = msg[1]
            if any(b[1] == sender for b in dest):
                continue
            dest.append(msg)
        if not bucket:
            del held[rnd]

    def result(self) -> tuple:
        """Final per-shard payload: owned estimates + Figure-5 count."""
        est = self.est
        owned = [int(est[u]) for u in range(self.shard.n_owned)]
        return owned, self.estimates_sent


def _die(inboxes, host: int) -> None:
    """Serve a scripted kill: flush our outbound queues, then exit hard.

    ``Queue.put`` only buffers; a background feeder thread does the
    actual pipe write. ``os._exit`` straight after a put could therefore
    kill the feeder mid-write — losing batches the protocol already
    counted as sent and, worse, poisoning the destination queue's
    writer lock for every other sender. Closing + joining each queue
    handle flushes and retires this process's feeders first, which
    models the intended failure ("the host sent its messages, then
    crashed") instead of a corrupted-transport one, which is documented
    as out of scope.
    """
    for y, q in enumerate(inboxes):
        if y == host:
            continue
        try:
            q.close()
            q.join_thread()
        except (OSError, ValueError):  # pragma: no cover - already closed
            pass
    _os._exit(KILL_EXIT_CODE)


def _worker_main(
    host: int,
    shard_blob: bytes,
    num_hosts: int,
    communication: str,
    p2p_filter: bool,
    backend: str,
    infinity: int,
    conn,
    inbox,
    inboxes,
    resilient: bool,
    faults_blob: "bytes | None",
    restore_blob: "bytes | None",
    telemetry: bool = False,
    record_blob: "bytes | None" = None,
    shm_info: "tuple | None" = None,
) -> None:
    """Worker process entry point (module-level: spawn-picklable).

    ``shard_blob`` is the coordinator's pickled :class:`HostShard` —
    shipped as bytes so the one serialization pass also yields the
    ``shard_payload_bytes`` metric (re-pickling a ``bytes`` payload for
    process startup costs only a memcpy). ``restore_blob`` (respawned
    replacements and whole-fleet resumes) is a prior
    :meth:`_ShardWorker.snapshot` to adopt before the command loop;
    ``faults_blob`` is this worker's slice of a
    :class:`~repro.sim.faults.FaultPlan`.

    ``shm_info`` (shm transport only) is ``(segment names, ShmLayout)``
    — the worker attaches every fleet segment by name and builds its
    :class:`~repro.sim.shm_transport.ShmMailbox` over the resolved
    kernel backend. Attached segments are deliberately never closed in
    the worker (live buffer exports forbid it; process exit reclaims
    the mapping) and never unlinked (the coordinator owns the
    lifecycle — that ownership is what lets a respawned replacement
    find the stuck round's rings intact).

    ``telemetry`` arms a worker-local :class:`~repro.telemetry.Tracer`
    (lane ``worker-<host>``) whose buffer ships up the control pipe on
    ``_TELEMETRY`` at gather time; ``record_blob`` is the pickled
    reference slices arming the per-round
    :class:`~repro.sim.tracing.TraceRecorder` diff. Both are pure
    observers — neither touches protocol state or message flow.

    Runs the command loop: fold/cascade/emit on ``_STEP``, holding back
    early-arriving batches tagged for a later round. Any exception is
    reported up the control pipe as ``("error", traceback)`` so the
    coordinator can fail loudly instead of hanging.
    """
    mailbox = None
    try:
        faults = pickle.loads(faults_blob) if faults_blob else None
        tracer = Tracer(lane=f"worker-{host}") if telemetry else NULL_TRACER
        worker = _ShardWorker(
            host, pickle.loads(shard_blob), num_hosts, communication,
            p2p_filter, backend, infinity, inboxes,
            resilient=resilient, faults=faults, tracer=tracer,
        )
        if shm_info is not None:
            names, layout = shm_info
            mailbox = attach_mailbox(worker.kb, layout, names, host)
            worker.mailbox = mailbox
        if restore_blob is not None:
            worker.restore(restore_blob)
        if record_blob is not None:
            worker.enable_recording(
                pickle.loads(record_blob), restored=restore_blob is not None
            )
        while True:
            cmd = conn.recv()
            op = cmd[0]
            if op == _INIT:
                if faults and faults.kill_now(1, "start"):
                    _die(inboxes, host)
                with tracer.span("round", round=1) as round_span:
                    report = worker.on_init(cmd[1])
                    round_span.note(sends=report[0])
                if faults and faults.kill_now(1, "after_emit"):
                    _die(inboxes, host)
                if faults:
                    faults.stall_before_report(1)
                conn.send(("done",) + report + (worker.record_diff(),))
            elif op == _STEP:
                rnd, expect = cmd[1], cmd[2]
                if faults and faults.kill_now(rnd, "start"):
                    _die(inboxes, host)
                with tracer.span("round", round=rnd) as round_span:
                    with tracer.span("mail.pull", round=rnd, expect=expect):
                        batches = worker.pull(inbox, rnd, expect)
                    report = worker.activate(rnd + 1, batches)
                    round_span.note(sends=report[0])
                if faults and faults.kill_now(rnd, "after_emit"):
                    _die(inboxes, host)
                if faults:
                    faults.stall_before_report(rnd)
                conn.send(("done",) + report + (worker.record_diff(),))
            elif op == _CHECKPOINT:
                rnd, expect = cmd[1], cmd[2]
                with tracer.span("checkpoint.snapshot", round=rnd):
                    worker.absorb(inbox, rnd + 1, expect)
                    worker.prune_resend(rnd)
                    blob = worker.snapshot()
                conn.send(("ckpt", blob))
            elif op == _RESEND:
                dest, from_round = cmd[1], cmd[2]
                count = 0
                nbytes = 0
                with tracer.span("recovery.resend", dest=dest):
                    for item in worker.resend.get(dest, ()):
                        if item[0] > from_round:
                            if worker.mailbox is None:
                                payload = item[1]
                            else:
                                # shm buffers raw (round, slots, vals);
                                # re-sends travel the queue lane, so
                                # pickle into the wire payload now
                                payload = pickle.dumps(
                                    (item[0], host, item[1], item[2]),
                                    protocol=pickle.HIGHEST_PROTOCOL,
                                )
                            inboxes[dest].put(payload)
                            count += 1
                            nbytes += len(payload)
                conn.send(("resent", count, nbytes))
            elif op == _REPLAY:
                # deterministic catch-up of a respawned replacement:
                # re-execute the missed rounds with transmission
                # suppressed (the live fleet already has these batches;
                # emitting only rebuilds counters + the resend buffer)
                with tracer.span("recovery.replay", rounds=len(cmd[1])):
                    for rnd, expect in cmd[1]:
                        if rnd == 1:
                            worker.on_init(2, transport=False)
                            worker.folded_through = max(
                                worker.folded_through, 1
                            )
                        else:
                            batches = worker.pull(inbox, rnd, expect)
                            worker.activate(rnd + 1, batches, transport=False)
                    worker.resync_record_prev()
                conn.send(("replayed",))
            elif op == _TELEMETRY:
                conn.send(("telemetry", tracer.events()))
            elif op == _FINISH:
                conn.send(("result",) + worker.result())
            elif op == _EXIT:
                break
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown opcode {op!r}")
    except (EOFError, KeyboardInterrupt):  # coordinator went away
        pass
    except Exception:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        # release the shm views before interpreter teardown — __del__
        # order would otherwise close mappings under live exports
        if mailbox is not None:
            mailbox.detach()


class MultiProcessOneToManyEngine:
    """Algorithms 3-5 with one OS process per :class:`HostShard`.

    Parameters
    ----------
    sharded:
        The partitioned graph; needs ``num_hosts >= 2`` (a single-host
        "distribution" has nobody to message — use the in-process
        engines).
    communication:
        ``"broadcast"`` (Algorithm 3) or ``"p2p"`` (Algorithm 5).
    mode:
        Only ``"lockstep"`` — the barrier-synchronous discipline a
        process-per-host deployment can execute in parallel (see the
        module docstring for why peersim cannot be).
    p2p_filter / max_rounds / strict / backend:
        As in :class:`~repro.sim.flat_many_engine.FlatOneToManyEngine`;
        ``backend`` is resolved *by name inside each worker*, so numpy
        arrays never cross a pipe.
    start_method:
        ``multiprocessing`` start method (default ``"spawn"``).
    transport:
        ``"queue"`` (default; pickled batches over per-worker queues)
        or ``"shm"`` (zero-copy mailbox rings in shared memory — see
        the module docstring and :mod:`repro.sim.shm_transport`).
        Replay is bit-identical on either.
    shm_max_records:
        Test knob: clamp every shm ring's per-round record capacity to
        force the overflow lane. ``None`` (default) sizes rings from
        the exact cut-structure upper bounds, where overflow cannot
        occur. Only meaningful with ``transport="shm"``.
    reply_timeout:
        Seconds the coordinator waits for any single worker round
        report before the failure detector fires. ``None`` derives a
        round-aware default from the per-worker load
        (:func:`default_reply_timeout`); raise it
        (``OneToManyConfig.mp_reply_timeout``) when a single round's
        fold/cascade legitimately takes longer.
    checkpoint:
        A :class:`~repro.sim.checkpoint.CheckpointPolicy`, or ``None``
        (no snapshots). Enables recovery.
    fault_plan:
        A :class:`~repro.sim.faults.FaultPlan` of scripted failures for
        tests/benchmarks, or ``None``. Enables recovery.
    recover:
        Force the recovery machinery (resend buffers, respawn + replay)
        on or off; ``None`` (default) enables it exactly when
        ``checkpoint`` or ``fault_plan`` is set. With recovery off, a
        lost worker aborts the run loudly (fleet reaped, queues
        drained).
    telemetry:
        ``True``/``False`` or a :class:`repro.telemetry.Tracer`. When
        enabled, the coordinator traces spawn / round / per-worker
        barrier waits / checkpoint commits / recoveries / gather in its
        own lane, each worker runs a local ``worker-<host>`` tracer
        (round, queue wait, fold, cascade, serialization, snapshot,
        replay spans), and the worker buffers ship up the control pipes
        at gather time into one fleet timeline. A pure observer: the
        protocol messages, their ordering and every counter are
        bit-identical with tracing on or off.
    recorders:
        :class:`~repro.sim.tracing.TraceRecorder` instances. Workers
        diff their owned estimate slice per round and ship
        ``(changed, errors)`` with the round report; the coordinator
        sums the shard aggregates (addition is associative, so sharding
        does not change the totals) and records one snapshot per
        executed round — identical output to the object engine's
        observer path.

    After :meth:`run`: :meth:`coreness`, :attr:`estimates_sent` (per
    host), :attr:`pipe_bytes_per_round` / :attr:`pipe_bytes_total` (the
    serialized host-to-host traffic; control-plane chatter excluded —
    on the shm transport this is the overflow-lane residue, zero on
    the happy path), :attr:`shm_bytes_per_round` /
    :attr:`shm_bytes_total` / :attr:`shm_overflow_batches` (ring
    traffic; empty/zero on the queue transport), :attr:`recoveries`
    (one event dict per recovered worker) and :attr:`checkpoint_bytes`
    (total snapshot bytes committed).
    """

    def __init__(
        self,
        sharded: ShardedCSR,
        communication: str = "broadcast",
        mode: str = "lockstep",
        seed: "int | None" = 0,
        p2p_filter: bool = False,
        max_rounds: int = 1_000_000,
        strict: bool = True,
        backend: str = "stdlib",
        start_method: str = "spawn",
        transport: str = "queue",
        shm_max_records: "int | None" = None,
        reply_timeout: "float | None" = None,
        checkpoint: "CheckpointPolicy | None" = None,
        fault_plan: "FaultPlan | None" = None,
        recover: "bool | None" = None,
        telemetry: object = None,
        recorders=(),
    ) -> None:
        if communication not in ("broadcast", "p2p"):
            raise ConfigurationError(
                f"unknown communication policy {communication!r}; "
                "options: ['broadcast', 'p2p']"
            )
        if p2p_filter and communication != "p2p":
            raise ConfigurationError("p2p_filter requires the p2p policy")
        if mode != "lockstep":
            raise ConfigurationError(
                f"engine='mp' cannot replay mode={mode!r}: peersim "
                "delivers messages immediately in a randomized per-host "
                "activation order, which is inherently sequential across "
                "processes; use mode='lockstep' (or the in-process "
                "engine='flat' for peersim runs)"
            )
        if sharded.num_hosts < 2:
            raise ConfigurationError(
                "engine='mp' spawns one OS process per host shard and "
                f"needs num_hosts >= 2, got {sharded.num_hosts}; a "
                "single host exchanges no messages — use engine='flat'"
            )
        if start_method not in START_METHODS:
            raise ConfigurationError(
                f"unknown start method {start_method!r}; "
                f"options: {list(START_METHODS)}"
            )
        if transport not in TRANSPORTS:
            raise ConfigurationError(
                f"unknown transport {transport!r}; "
                f"options: {list(TRANSPORTS)}"
            )
        if shm_max_records is not None:
            if transport != "shm":
                raise ConfigurationError(
                    "shm_max_records clamps the shared-memory ring "
                    "capacity and is only meaningful with "
                    f"transport='shm', got transport={transport!r}"
                )
            if shm_max_records < 0:
                raise ConfigurationError(
                    "shm_max_records must be >= 0, got "
                    f"{shm_max_records!r}"
                )
        if checkpoint is not None and not isinstance(
            checkpoint, CheckpointPolicy
        ):
            raise ConfigurationError(
                "checkpoint must be a repro.sim.checkpoint."
                f"CheckpointPolicy (or None), got {checkpoint!r}"
            )
        if fault_plan is not None:
            if not isinstance(fault_plan, FaultPlan):
                raise ConfigurationError(
                    "fault_plan must be a repro.sim.faults.FaultPlan "
                    f"(or None), got {fault_plan!r}"
                )
            fault_plan.validate_for(sharded.num_hosts)
        # resolve eagerly so an unknown name / missing numpy fails in
        # the parent, before any process is spawned; workers re-resolve
        # by name
        self.backend_name = resolve_backend(backend).name
        self.sharded = sharded
        self.communication = communication
        self.mode = mode
        self.seed = seed  # accepted for signature parity; lockstep never draws
        self.p2p_filter = p2p_filter
        self.max_rounds = max_rounds
        self.strict = strict
        self.start_method = start_method
        self.transport = transport
        self.shm_max_records = shm_max_records
        if reply_timeout is not None and reply_timeout <= 0:
            raise ConfigurationError(
                f"reply_timeout must be positive, got {reply_timeout!r}"
            )
        self.reply_timeout = (
            default_reply_timeout(sharded.csr.num_nodes, sharded.num_hosts)
            if reply_timeout is None
            else reply_timeout
        )
        self.checkpoint = checkpoint
        self.fault_plan = fault_plan
        self.resilient = (
            recover
            if recover is not None
            else (checkpoint is not None or fault_plan is not None)
        )
        self.tracer = resolve_tracer(telemetry, lane="coordinator")
        self.recorders = list(recorders)
        self._record_blobs: "list[bytes] | None" = None
        #: Extra manifest fields the runner wants persisted (e.g. the
        #: algorithm label a resume should report).
        self.checkpoint_meta: dict = {}
        self.stats = SimulationStats()
        #: Figure-5 overhead numerator per host (filled by :meth:`run`).
        self.estimates_sent: array = array("q")
        #: Serialized host-to-host bytes per round (index 0 == round 1).
        self.pipe_bytes_per_round: list[int] = []
        self.pipe_bytes_total: int = 0
        #: Ring bytes written per round / total (shm transport only —
        #: empty/zero on the queue transport).
        self.shm_bytes_per_round: list[int] = []
        self.shm_bytes_total: int = 0
        #: Batches that exceeded their ring's capacity and fell back to
        #: the pickled queue lane (possible only under shm_max_records).
        self.shm_overflow_batches: int = 0
        #: Pickled size of each worker's shard payload (what start-up
        #: serialization actually shipped) — the cost the config-layer
        #: guard warns about.
        self.shard_payload_bytes: list[int] = []
        #: One dict per recovered worker: worker, round, the checkpoint
        #: round it restored from, replayed round count, resent bytes,
        #: and the recovery's wall-clock seconds.
        self.recoveries: list[dict] = []
        #: Total snapshot bytes committed to the checkpoint directory.
        self.checkpoint_bytes: int = 0
        #: Set on resumed runs: the checkpointed round execution
        #: restarted from (``None`` for fresh runs).
        self.resumed_from_round: "int | None" = None
        self._owned_est: list[list[int]] = []
        self._resume = None  # Checkpoint adopted by run() (resume path)
        # in-memory copy of the newest checkpoint: restore source for
        # in-run worker recovery (round 0 == fresh shard, no snapshot)
        self._ckpt_round = 0
        self._ckpt_blobs: "list[bytes] | None" = None
        # expect counts per dispatched round since the last checkpoint —
        # exactly what a replacement needs to replay deterministically
        self._expect_hist: dict[int, list[int]] = {}
        self._last_barrier_ts = _time.time()
        #: Every process the engine ever spawned (including replaced
        #: workers) — all are reaped by shutdown; tests assert on it.
        self._all_procs: list = []

    # ------------------------------------------------------------------
    def coreness(self) -> dict[int, int]:
        """``{original node id: coreness}`` after :meth:`run`."""
        ids = self.sharded.csr.ids
        out: dict[int, int] = {}
        for shard, owned_est in zip(self.sharded.shards, self._owned_est):
            owned_global = shard.owned_global
            for u, value in enumerate(owned_est):
                out[ids[owned_global[u]]] = value
        return out

    def estimates_sent_total(self) -> int:
        """Sum of the per-host Figure-5 overhead numerators."""
        return sum(self.estimates_sent)

    # ------------------------------------------------------------------
    def _spawn_worker(
        self, x: int, restore_blob: "bytes | None", with_faults: bool
    ) -> None:
        """(Re)spawn worker ``x``; fills ``_conns[x]`` / ``_procs[x]``."""
        shard = self.sharded.shards[x]
        blob = pickle.dumps(shard, protocol=pickle.HIGHEST_PROTOCOL)
        if x == len(self.shard_payload_bytes):
            self.shard_payload_bytes.append(len(blob))
        faults_blob = None
        if with_faults and self.fault_plan is not None:
            mine = self.fault_plan.for_worker(x)
            if mine is not None:
                faults_blob = pickle.dumps(
                    mine, protocol=pickle.HIGHEST_PROTOCOL
                )
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                x, blob, self.sharded.num_hosts, self.communication,
                self.p2p_filter, self.backend_name, self._infinity,
                child_conn, self._inboxes[x], self._inboxes,
                self.resilient, faults_blob, restore_blob,
                self.tracer.enabled,
                None if self._record_blobs is None else self._record_blobs[x],
                self._shm_info,
            ),
            daemon=True,
            name=f"kcore-shard-{x}",
        )
        if x == len(self._conns):
            self._conns.append(parent_conn)
            self._procs.append(proc)
        else:
            self._conns[x] = parent_conn
            self._procs[x] = proc
        proc.start()
        self._all_procs.append(proc)
        child_conn.close()

    # ------------------------------------------------------------------
    def _recv(self, x: int, rnd: int, timeout: "float | None" = None) -> tuple:
        """One worker reply, with a failure detector instead of a hang.

        Raises :class:`_WorkerLost` when the worker is dead (closed
        pipe / nonzero exitcode) or wedged (alive but silent past the
        reply timeout); the barrier decides whether that means recovery
        or a loud abort. A worker-reported exception (an actual bug,
        not a process failure) raises ``RuntimeError`` directly — replay
        would only crash again.
        """
        conn = self._conns[x]
        wait = self.reply_timeout if timeout is None else timeout
        if not conn.poll(wait):
            proc = self._procs[x]
            alive = proc.is_alive()
            raise _WorkerLost(
                x,
                f"mp worker {x} sent no reply within {wait:.0f}s at round "
                f"{rnd} (alive={alive}, exitcode={proc.exitcode})",
                wedged=alive,
            )
        try:
            reply = conn.recv()
        except EOFError:
            # the pipe can hit EOF before the OS exit status is
            # reapable; give the join a moment so the reason is useful
            self._procs[x].join(timeout=5.0)
            raise _WorkerLost(
                x,
                f"mp worker {x} died without a reply at round {rnd} "
                f"(exitcode={self._procs[x].exitcode})",
                wedged=False,
            ) from None
        if reply[0] == "error":
            raise RuntimeError(f"mp worker {x} failed:\n{reply[1]}")
        return reply

    def _raise_lost(self, lost: "list[_WorkerLost]", rnd: int):
        """Convert detector hits into the loud, documented abort errors.

        The fleet itself is reaped (terminate + join + queue drain) by
        :meth:`_shutdown` on the way out of :meth:`run` — this method
        only picks the right exception.
        """
        ts = datetime.fromtimestamp(self._last_barrier_ts).isoformat(
            timespec="seconds"
        )
        detail = "; ".join(exc.reason for exc in lost)
        if len(lost) > 1:
            why = (
                "more than one worker was lost at the same barrier (out "
                "of scope for in-flight recovery — restart via "
                "resume_from_checkpoint)"
            )
        elif not self.resilient:
            why = (
                "recovery is disabled for this run, so the resend "
                "buffers recovery needs were never kept (configure "
                "OneToManyConfig.checkpoint to enable it)"
            )
        else:
            why = (
                "the loss happened outside a recoverable round barrier "
                "(during recovery itself, a checkpoint barrier, or "
                "result gathering) — restart via resume_from_checkpoint"
            )
        suffix = (
            f" Last barrier completed at {ts}. Recovery was not "
            f"attempted: {why}."
        )
        if any(exc.wedged for exc in lost):
            raise FleetTimeoutError(
                f"the shard fleet is wedged at round {rnd}: {detail}."
                + suffix
                + " If the workers are merely slow, raise "
                "mp_reply_timeout."
            )
        raise RuntimeError(
            f"shard worker lost at round {rnd}: {detail}." + suffix
        )

    # ------------------------------------------------------------------
    def _recover_worker(self, exc: "_WorkerLost", rnd: int) -> tuple:
        """Respawn + replay one lost worker; returns its round report.

        See the module docstring for the protocol. Any further loss
        during recovery propagates as :class:`_WorkerLost` and becomes
        a loud abort — recovery is not attempted recursively.
        """
        t0 = _time.perf_counter()
        x = exc.worker
        proc = self._procs[x]
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - stuck in kernel
                proc.kill()
                proc.join(timeout=5.0)
        else:
            proc.join()
        try:
            self._conns[x].close()
        except OSError:  # pragma: no cover - already closed
            pass
        from_round = self._ckpt_round
        restore_blob = (
            self._ckpt_blobs[x] if self._ckpt_blobs is not None else None
        )
        # replacements carry no fault plan: a recovered worker does not
        # re-crash on replay (crash-stop model)
        self._spawn_worker(x, restore_blob, with_faults=False)
        # survivors replay the missed estimate batches from their
        # resend buffers (everything since the last checkpoint)
        resent_batches = 0
        resent_bytes = 0
        survivors = [y for y in range(self.sharded.num_hosts) if y != x]
        for y in survivors:
            self._conns[y].send((_RESEND, x, from_round))
        for y in survivors:
            _tag, count, nbytes = self._recv(y, rnd)
            resent_batches += count
            resent_bytes += nbytes
        # deterministic catch-up to the stuck round, then re-execute it
        replay_rounds = [
            (k, self._expect_hist[k][x]) for k in range(from_round + 1, rnd)
        ]
        self._conns[x].send((_REPLAY, replay_rounds))
        self._recv(x, rnd, timeout=self.reply_timeout * max(1, len(replay_rounds)))
        if rnd == 1:
            self._conns[x].send((_INIT, 2))
        else:
            self._conns[x].send((_STEP, rnd, self._expect_hist[rnd][x]))
        report = self._recv(x, rnd)
        self.recoveries.append(
            {
                "worker": x,
                "round": rnd,
                "restored_from_round": from_round,
                "replayed_rounds": len(replay_rounds),
                "resent_batches": resent_batches,
                "resent_bytes": resent_bytes,
                "seconds": _time.perf_counter() - t0,
                "reason": exc.reason,
            }
        )
        return report

    def _round_barrier(self, rnd: int) -> "dict[int, tuple]":
        """Collect every worker's round report, recovering a lost one.

        Exactly one loss per barrier is recoverable in-flight; two or
        more (or any loss with recovery disabled) abort loudly with the
        whole fleet reaped.
        """
        reports: dict[int, tuple] = {}
        lost: list[_WorkerLost] = []
        for x in range(self.sharded.num_hosts):
            try:
                # per-worker wait spans: the gap between the first and
                # the last recv *is* the barrier skew
                with self.tracer.span("barrier.recv", worker=x, round=rnd):
                    reports[x] = self._recv(x, rnd)
            except _WorkerLost as exc:
                lost.append(exc)
        if lost:
            if not self.resilient or len(lost) > 1:
                self._raise_lost(lost, rnd)
            with self.tracer.span(
                "recovery", worker=lost[0].worker, round=rnd
            ):
                reports[lost[0].worker] = self._recover_worker(lost[0], rnd)
        self._last_barrier_ts = _time.time()
        return reports

    # ------------------------------------------------------------------
    def _write_checkpoint(
        self, rnd, expect, sends, pending, sent_msgs, pipe_bytes
    ) -> None:
        """The checkpoint barrier: drain, snapshot, commit atomically."""
        num_hosts = self.sharded.num_hosts
        with self.tracer.span("checkpoint.commit", round=rnd):
            self._checkpoint_barrier(rnd, expect, sends, pending, sent_msgs,
                                     pipe_bytes)

    def _checkpoint_barrier(
        self, rnd, expect, sends, pending, sent_msgs, pipe_bytes
    ) -> None:
        num_hosts = self.sharded.num_hosts
        for x in range(num_hosts):
            self._conns[x].send((_CHECKPOINT, rnd, expect[x]))
        blobs: list[bytes] = []
        for x in range(num_hosts):
            reply = self._recv(x, rnd)
            blobs.append(reply[1])
        self._ckpt_round = rnd
        self._ckpt_blobs = blobs
        # replay never reaches further back than the checkpoint round
        for k in [k for k in self._expect_hist if k <= rnd]:
            del self._expect_hist[k]
        if self._ckpt_writer is not None:
            coordinator = {
                "rnd": rnd,
                "expect": list(expect),
                "sends": sends,
                "pending": pending,
                "sends_per_round": list(self.stats.sends_per_round),
                "execution_time": self.stats.execution_time,
                "sent_msgs": list(sent_msgs),
                "pipe_bytes_per_round": list(pipe_bytes),
                "shm_bytes_per_round": list(self.shm_bytes_per_round),
                "shm_overflow_batches": self.shm_overflow_batches,
                "recoveries": list(self.recoveries),
            }
            config = {
                "communication": self.communication,
                "p2p_filter": self.p2p_filter,
                "backend": self.backend_name,
                "num_hosts": num_hosts,
                "num_nodes": self.sharded.csr.num_nodes,
                "start_method": self.start_method,
                "max_rounds": self.max_rounds,
                "strict": self.strict,
                "transport": self.transport,
                "checkpoint_every": self.checkpoint.every_n_rounds,
                **self.checkpoint_meta,
            }
            self.checkpoint_bytes += self._ckpt_writer.commit(
                rnd, blobs, coordinator, config
            )

    def _shutdown(self, graceful: bool) -> None:
        """Reap the fleet: every worker joined, every queue drained.

        Tolerates partial startup (``_procs`` only ever holds *started*
        workers; ``_conns`` may be one entry longer if ``Pipe()``
        succeeded but ``Process.start()`` did not) and is the single
        exit path for success, abort and recovery-failure alike — after
        it returns no child of this engine is alive and no queue feeder
        thread holds buffered data (the source of semaphore-leak
        warnings on abort).
        """
        for x, proc in enumerate(self._procs):
            if graceful and proc.is_alive():
                try:
                    self._conns[x].send((_EXIT,))
                except (BrokenPipeError, OSError):
                    pass
        for proc in self._all_procs:
            proc.join(timeout=5.0 if graceful else 0.5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - stuck in kernel
                proc.kill()
                proc.join(timeout=5.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for inbox in self._inboxes:
            # drain anything a dead receiver never consumed so the
            # feeder threads release their buffers, then detach —
            # cancel_join_thread keeps an abort from blocking on a
            # feeder that still holds data
            try:
                while True:
                    inbox.get_nowait()
            except (Empty, OSError, ValueError):
                pass
            inbox.cancel_join_thread()
            inbox.close()
        # the coordinator owns the shm segment lifecycle: close its
        # mapping and unlink the name once every worker is reaped (the
        # workers' mappings die with their processes). getattr: shutdown
        # also runs on exceptions raised before run() created any.
        for seg in getattr(self, "_shm_segments", ()):
            try:
                seg.close()
                seg.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass
        self._shm_segments = []

    # ------------------------------------------------------------------
    def run(self) -> SimulationStats:
        """Run to quiescence (or ``max_rounds``); returns the stats."""
        # deferred for the same import-cycle reason as the flat engine
        from repro.core.one_to_many import INFINITY_INT

        start = _time.perf_counter()
        stats = self.stats
        sharded = self.sharded
        num_hosts = sharded.num_hosts
        self._ctx = mp.get_context(self.start_method)
        self._infinity = INFINITY_INT

        self._inboxes: list = []
        self._conns = []
        self._procs = []
        self._shm_segments: list = []
        self._shm_info: "tuple | None" = None
        self.shard_payload_bytes = []
        self._ckpt_writer = (
            CheckpointWriter(self.checkpoint.dir) if self.checkpoint else None
        )

        resume = self._resume
        sent_msgs = array("q", [0]) * num_hosts
        pipe_bytes = self.pipe_bytes_per_round = []
        shm_bytes = self.shm_bytes_per_round = []
        all_hosts = range(num_hosts)
        tracer = self.tracer
        recorders = self.recorders
        if recorders:
            # reference slices per worker, pickled once — workers diff
            # their owned slice per round and ship the aggregates
            ids = sharded.csr.ids
            self._record_blobs = [
                pickle.dumps(
                    [
                        reference_slice(
                            rec.reference, [ids[g] for g in shard.owned_global]
                        )
                        for rec in recorders
                    ],
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
                for shard in sharded.shards
            ]

        def record_round(rnd: int, sends: int, reports: dict) -> None:
            if not recorders:
                return
            changed = 0
            errors: "list[int | None]" = [
                0 if rec.reference is not None else None for rec in recorders
            ]
            for x in all_hosts:
                shard_changed, shard_errors = reports[x][6]
                changed += shard_changed
                for j, err in enumerate(shard_errors):
                    if err is not None:
                        errors[j] += err
            for rec, err in zip(recorders, errors):
                rec.record(rnd, sends, changed, err)

        rnd = 0
        try:
            # -- spawn the fleet (inside the cleanup scope: a failure
            # on worker k must not leak workers 0..k-1). Shards are
            # pickled exactly once — the blob is both the wire payload
            # and the shard_payload_bytes metric.
            self._inboxes.extend(self._ctx.Queue() for _ in all_hosts)
            if self.transport == "shm":
                # coordinator-owned segments: created before the fleet,
                # unlinked after it — they survive any worker's death,
                # which is what keeps in-flight recovery working
                layout = build_shm_layout(sharded, self.shm_max_records)
                with tracer.span(
                    "shm.create",
                    segments=num_hosts,
                    nbytes=sum(layout.seg_bytes),
                ):
                    self._shm_segments = create_segments(layout)
                self._shm_info = (
                    [seg.name for seg in self._shm_segments],
                    layout,
                )
            with tracer.span("spawn", workers=num_hosts):
                for x in all_hosts:
                    self._spawn_worker(
                        x,
                        restore_blob=(
                            resume.worker_blobs[x]
                            if resume is not None
                            else None
                        ),
                        with_faults=resume is None,
                    )
            if self._ckpt_writer is not None:
                # once per run: the partitioned graph itself, so a
                # resume needs nothing but the checkpoint directory
                self.checkpoint_bytes += self._ckpt_writer.write_fleet(
                    pickle.dumps(sharded, protocol=pickle.HIGHEST_PROTOCOL)
                )

            if resume is not None:
                # -- adopt the manifest's loop state; the workers'
                # snapshots already hold the drained mailbox backlog,
                # so the barrier resumes as if never interrupted
                co = resume.coordinator
                rnd = co["rnd"]
                expect = list(co["expect"])
                sends = co["sends"]
                pending = co["pending"]
                stats.sends_per_round.extend(co["sends_per_round"])
                stats.execution_time = co["execution_time"]
                for x, count in enumerate(co["sent_msgs"]):
                    sent_msgs[x] = count
                pipe_bytes.extend(co["pipe_bytes_per_round"])
                shm_bytes.extend(co.get("shm_bytes_per_round", ()))
                self.shm_overflow_batches = co.get("shm_overflow_batches", 0)
                self.recoveries.extend(co.get("recoveries", ()))
                self.resumed_from_round = rnd
                self._ckpt_round = rnd
                self._ckpt_blobs = list(resume.worker_blobs)
            else:
                # -- round 1: Algorithm 3 on_init everywhere (lockstep
                # has no intra-round delivery, so the barrier is the
                # only order)
                rnd = 1
                self._expect_hist[1] = [0] * num_hosts
                with tracer.span("round", round=1) as round_span:
                    for x in all_hosts:
                        self._conns[x].send((_INIT, rnd + 1))
                    sends = 0
                    round_bytes = 0
                    round_shm = 0
                    expect = [0] * num_hosts  # per-dest counts, next round
                    reports = self._round_barrier(rnd)
                    for x in all_hosts:
                        _tag, sent, per_dest, nbytes, shm_nb, over = (
                            reports[x][:6]
                        )
                        sends += sent
                        sent_msgs[x] += sent
                        round_bytes += nbytes
                        round_shm += shm_nb
                        self.shm_overflow_batches += over
                        for y, count in per_dest.items():
                            expect[y] += count
                    round_span.note(sends=sends)
                pending = sends
                stats.sends_per_round.append(sends)
                pipe_bytes.append(round_bytes)
                shm_bytes.append(round_shm)
                if sends:
                    stats.execution_time += 1
                record_round(rnd, sends, reports)
                if self.checkpoint and self.checkpoint.due(rnd):
                    self._write_checkpoint(
                        rnd, expect, sends, pending, sent_msgs, pipe_bytes
                    )

            while sends or pending:
                if rnd >= self.max_rounds:
                    stats.converged = False
                    stats.rounds_executed = rnd
                    break
                rnd += 1
                self._expect_hist[rnd] = list(expect)
                with tracer.span("round", round=rnd) as round_span:
                    for x in all_hosts:
                        self._conns[x].send((_STEP, rnd, expect[x]))
                    delivered = sum(expect)
                    expect = [0] * num_hosts
                    sends = 0
                    round_bytes = 0
                    round_shm = 0
                    reports = self._round_barrier(rnd)
                    for x in all_hosts:
                        _tag, sent, per_dest, nbytes, shm_nb, over = (
                            reports[x][:6]
                        )
                        sends += sent
                        sent_msgs[x] += sent
                        round_bytes += nbytes
                        round_shm += shm_nb
                        self.shm_overflow_batches += over
                        for y, count in per_dest.items():
                            expect[y] += count
                    round_span.note(sends=sends)
                pending += sends - delivered
                stats.sends_per_round.append(sends)
                pipe_bytes.append(round_bytes)
                shm_bytes.append(round_shm)
                if sends:
                    stats.execution_time += 1
                record_round(rnd, sends, reports)
                if self.checkpoint and self.checkpoint.due(rnd):
                    self._write_checkpoint(
                        rnd, expect, sends, pending, sent_msgs, pipe_bytes
                    )
            else:
                stats.rounds_executed = rnd

            # -- gather: worker span buffers (telemetry runs first so
            # the fleet timeline ends before the result recv), then
            # owned estimates + Figure-5 counters
            if tracer.enabled:
                with tracer.span("gather.telemetry"):
                    for x in all_hosts:
                        self._conns[x].send((_TELEMETRY,))
                    worker_events = {}
                    for x in all_hosts:
                        reply = self._recv(x, rnd)
                        worker_events[x] = reply[1]
                merge_worker_buffers(tracer, worker_events)
            with tracer.span("gather.results"):
                for x in all_hosts:
                    self._conns[x].send((_FINISH,))
                self._owned_est = []
                estimates_sent = self.estimates_sent = array("q")
                for x in all_hosts:
                    _tag, owned, est_sent = self._recv(x, rnd)
                    self._owned_est.append(owned)
                    estimates_sent.append(est_sent)
        except _WorkerLost as exc:
            # a loss outside a recoverable barrier (checkpoint / gather /
            # mid-recovery): reap everything, then surface it loudly
            try:
                self._raise_lost([exc], rnd)
            finally:
                self._shutdown(graceful=False)
        except BaseException:
            self._shutdown(graceful=False)
            raise
        self._shutdown(graceful=True)

        export_send_counts(stats, sent_msgs)
        self.pipe_bytes_total = sum(pipe_bytes)
        self.shm_bytes_total = sum(shm_bytes)
        stats.wall_seconds = _time.perf_counter() - start
        if not stats.converged and self.strict:
            raise ConvergenceError(stats.rounds_executed)
        return stats
