"""Flat, array-based execution of the one-to-many protocol.

The object path runs Algorithms 3-5 as :class:`~repro.core.one_to_many.
KCoreHost` processes under the general :class:`~repro.sim.engine.
RoundEngine`: every estimate lives in a per-host ``dict``, every
adjacency visit chases a dict of tuples, every internal cascade step
pays set/dict bookkeeping, and every host-to-host message allocates a
``(sender, payload)`` tuple plus a list of pairs. This module is the
specialised counterpart, in the mould of
:mod:`repro.sim.flat_engine`: it hard-codes the host protocol over a
:class:`~repro.graph.sharded.ShardedCSR` and keeps all protocol state
in flat per-shard arrays —

* ``est[u]`` — one array per shard covering ``V(x) ∪ neighborV(x)`` in
  the shard's local index space (owned nodes first, then the external
  boundary — the paper deliberately stores both in one array, and here
  that array is literal);
* the internal cascade (``improveEstimate``, Algorithm 4) runs on the
  shard-local CSR with the support-counter shortcut of the flat
  one-to-one engines (``sup[u]`` tracks how many neighbours sit at or
  above ``est[u]``, so ``computeIndex`` only runs when a drop can
  actually lower the estimate);
* host-to-host mailboxes reuse the mailbox-slot scheme of the flat
  one-to-one engines, lifted from (node, node) edges to (host, host)
  channels: a transmission appends ``(ext-slot, value)`` pairs into the
  destination shard's slot/value lists — folding a mailbox is pure
  array reads, and because estimates only decrease, sequential min-fold
  over the pairs reproduces the object engine's fold of every pending
  payload.

Since PR 4 the seeding / cascade / mailbox-fold array work lives in the
shared kernel layer (:mod:`repro.sim.kernels`): the engine orchestrates
host activations, transmissions and statistics while a
:class:`~repro.sim.kernels.base.KernelBackend` executes the per-shard
batches. ``backend="stdlib"`` (default) is the canonical worklist;
``backend="numpy"`` runs the cascade as vectorised Jacobi rounds of
the same monotone operator — legitimate because the fixpoint, the
changed-node set and the exact support counters are all
schedule-independent (see below), and those are the only cascade
outputs the protocol observes. Both modes and all three communication
policies accept either backend.

**Semantics.** The engine is an exact replay of
``RoundEngine`` driving ``build_host_processes`` output, for both
delivery disciplines: ``mode="lockstep"`` (deterministic host order,
messages delivered next round — double-buffered mailboxes) and
``mode="peersim"`` (a fresh ``rng.shuffle`` of the host pid list every
round from the *identical RNG stream*, messages visible to hosts
activated later in the same round). Host pids are always
``0..num_hosts-1`` in both paths, so — unlike the one-to-one replay —
no activation-id translation is ever needed. The internal cascade may
visit nodes in a different order than the object worklist, which is
safe: ``improveEstimate`` converges to a unique fixpoint from any
schedule (the operator is monotone non-increasing), so the post-cascade
estimates *and* the changed-node set are schedule-independent — and
those are the only cascade outputs the protocol observes. Coreness,
round counts, per-round send counts, per-host message counts, and the
Figure-5 ``estimates_sent`` overhead (under ``broadcast``, ``p2p``, and
the ``p2p_filter`` extension) all match the object engine bit-for-bit
per seed; ``tests/test_flat_one_to_many_equivalence.py`` asserts it,
and ``tests/test_backend_equivalence.py`` asserts stdlib/numpy
bit-identity on the same grid.

**When is it selected?** ``run_one_to_many(engine="flat")`` routes here
via :mod:`repro.core.one_to_many_flat`. Generic observers are not
supported — use the object engine for arbitrary per-round callbacks —
but the two sanctioned pure observers are: ``telemetry=`` brackets
rounds and per-shard kernel phases in :mod:`repro.telemetry` spans, and
``recorders=`` feeds :class:`~repro.sim.tracing.TraceRecorder`
instances per-round node-level aggregates (owned-estimate diffs and
residual error — strictly more informative than observing object
``KCoreHost`` processes, which expose no per-node ``core``). Both are
write-only sinks the protocol never reads back.
"""

from __future__ import annotations

import random
import time as _time
from array import array
from typing import Sequence

from repro.errors import ConfigurationError, ConvergenceError
from repro.graph.sharded import ShardedCSR
from repro.sim.kernels import KernelBackend, export_send_counts, resolve_backend
from repro.sim.metrics import SimulationStats
from repro.sim.tracing import diff_round, reference_slice
from repro.telemetry.spans import resolve_tracer
from repro.utils.rng import make_rng

__all__ = ["FlatOneToManyEngine"]


class FlatOneToManyEngine:
    """Algorithms 3-5 over :class:`ShardedCSR` arrays.

    Parameters
    ----------
    sharded:
        The partitioned graph.
    communication:
        ``"broadcast"`` (Algorithm 3) or ``"p2p"`` (Algorithm 5).
    mode:
        ``"peersim"`` (randomized activation, immediate delivery) or
        ``"lockstep"`` (pid order, next-round delivery) — the same two
        disciplines as :class:`~repro.sim.engine.RoundEngine`.
    seed:
        Seed (or shared :class:`random.Random`) for the peersim
        activation shuffle; pass the object engine's seed to reproduce
        a run exactly. Ignored under ``lockstep`` (which never draws).
    p2p_filter:
        The host-level send-filter extension (p2p only).
    max_rounds / strict:
        As in :class:`~repro.sim.flat_engine.FlatOneToOneEngine`.
    backend:
        Kernel backend (name or instance; see
        :mod:`repro.sim.kernels`). Both activation modes and all
        communication policies support ``"stdlib"`` and ``"numpy"`` —
        the per-shard batches are vectorisable regardless of the host
        activation order, which stays in this engine.
    telemetry:
        ``True``/``False`` or a :class:`repro.telemetry.Tracer`; spans
        bracket each round and each per-shard kernel phase
        (``kernel.seed_shard`` / ``kernel.fold_mailbox`` /
        ``kernel.cascade`` / ``emit``). Pure observer.
    recorders:
        :class:`~repro.sim.tracing.TraceRecorder` instances fed
        node-level per-round aggregates (see module docstring).

    After :meth:`run`, :attr:`estimates_sent` holds the Figure-5
    overhead numerator per host and :meth:`coreness` the result.
    """

    __slots__ = (
        "sharded",
        "communication",
        "mode",
        "seed",
        "p2p_filter",
        "max_rounds",
        "strict",
        "backend",
        "stats",
        "estimates_sent",
        "tracer",
        "recorders",
        "_est",
    )

    def __init__(
        self,
        sharded: ShardedCSR,
        communication: str = "broadcast",
        mode: str = "peersim",
        seed: int | random.Random | None = 0,
        p2p_filter: bool = False,
        max_rounds: int = 1_000_000,
        strict: bool = True,
        backend: "str | KernelBackend" = "stdlib",
        telemetry: object = None,
        recorders: Sequence = (),
    ) -> None:
        if communication not in ("broadcast", "p2p"):
            raise ConfigurationError(
                f"unknown communication policy {communication!r}; "
                "options: ['broadcast', 'p2p']"
            )
        if p2p_filter and communication != "p2p":
            raise ConfigurationError("p2p_filter requires the p2p policy")
        if mode not in ("peersim", "lockstep"):
            raise ConfigurationError(
                f"unknown engine mode {mode!r}; the flat engine replays "
                "'lockstep' or 'peersim' semantics"
            )
        self.sharded = sharded
        self.communication = communication
        self.mode = mode
        self.seed = seed
        self.p2p_filter = p2p_filter
        self.max_rounds = max_rounds
        self.strict = strict
        self.backend = resolve_backend(backend)
        self.stats = SimulationStats()
        #: Figure-5 overhead numerator per host (filled by :meth:`run`).
        self.estimates_sent: array = array("q")
        # pure observers: the no-op tracer and an empty recorder list
        # leave the replay loop untouched (see flat_engine)
        self.tracer = resolve_tracer(telemetry)
        self.recorders = list(recorders)
        self._est: list = []

    # ------------------------------------------------------------------
    def coreness(self) -> dict[int, int]:
        """``{original node id: coreness}`` after :meth:`run`."""
        ids = self.sharded.csr.ids
        out: dict[int, int] = {}
        for shard, est in zip(self.sharded.shards, self._est):
            owned_global = shard.owned_global
            for u in range(shard.n_owned):
                out[ids[owned_global[u]]] = int(est[u])
        return out

    def estimates_sent_total(self) -> int:
        """Sum of the per-host Figure-5 overhead numerators."""
        return sum(self.estimates_sent)

    # ------------------------------------------------------------------
    def run(self) -> SimulationStats:
        """Run to quiescence (or ``max_rounds``); returns the stats."""
        # deferred: importing at module scope closes a cycle through
        # repro.sim.__init__ -> here -> core.one_to_many -> core.result
        from repro.core.one_to_many import INFINITY_INT

        start = _time.perf_counter()
        kb = self.backend
        stats = self.stats
        tracer = self.tracer
        recorders = self.recorders
        sharded = self.sharded
        shards = sharded.shards
        num_hosts = sharded.num_hosts
        peersim = self.mode == "peersim"
        broadcast = self.communication == "broadcast"
        p2p_filter = self.p2p_filter
        rng = make_rng(self.seed) if peersim else None
        scratch: list[int] = []

        # per-shard graph arrays, adopted once by the backend
        sh_offsets = [kb.graph_array(s.offsets) for s in shards]
        sh_targets = [kb.graph_array(s.targets) for s in shards]
        sh_watch_offsets = [kb.graph_array(s.watch_offsets) for s in shards]
        sh_watch_targets = [kb.graph_array(s.watch_targets) for s in shards]

        est_list = self._est = [
            kb.full(s.n_owned + s.n_ext) for s in shards
        ]
        # sup[u] — the support counter of the flat one-to-one engines,
        # per shard: the number of u's neighbours (internal or external)
        # whose estimate is >= est[u]. computeIndex lowers est[u] iff
        # fewer than est[u] neighbours sit at >= est[u] (its suffix
        # count test), so a neighbour's drop needs a recompute only when
        # it pushes sup below est — every other cascade visit would
        # return est[u] unchanged and is skipped. The kernels maintain
        # the invariant exactly (recomputes re-read it from the suffix
        # counts), so it is bit-identical across backends.
        sup_list = [kb.full(s.n_owned) for s in shards]
        changed_flag = [bytearray(s.n_owned) for s in shards]
        changed_lists: list[list[int]] = [[] for _ in range(num_hosts)]
        queued = [kb.worklist_flags(s.n_owned) for s in shards]
        estimates_sent = self.estimates_sent = array("q", [0]) * num_hosts
        sent_msgs = array("q", [0]) * num_hosts
        # p2p transmit scratch: per-destination counts + touched list
        host_counts = array("q", [0]) * num_hosts

        # Mailboxes: parallel (ext-slot, value) lists per destination
        # host, plus an engine-message counter (the object engine's
        # quiescence check and on_messages gating count *messages*, one
        # per transmission, possibly carrying zero relevant pairs).
        # peersim delivers into the live buffer; lockstep into the next
        # buffer, swapped at round start (RoundEngine's double buffer).
        mb_slots: list[list[int]] = [[] for _ in range(num_hosts)]
        mb_vals: list[list[int]] = [[] for _ in range(num_hosts)]
        mb_msgs = array("q", [0]) * num_hosts
        if peersim:
            in_slots, in_vals, in_msgs = mb_slots, mb_vals, mb_msgs
        else:
            in_slots = [[] for _ in range(num_hosts)]
            in_vals = [[] for _ in range(num_hosts)]
            in_msgs = array("q", [0]) * num_hosts
        pending = 0
        sends = 0

        # -- transmit (Algorithm 3's S / Algorithm 5's per-host subsets)
        # NOTE: repro.sim.mp_engine._ShardWorker._emit is the
        # per-process transcription of this closure (per-dest batches
        # over queues instead of in-process buffer appends); any change
        # to a policy branch or to the estimates_sent accounting here
        # must be mirrored there — tests/test_mp_engine.py enforces the
        # equivalence across the full grid
        def emit(x: int, updates: list[tuple[int, int]]) -> None:
            nonlocal pending, sends
            shard = shards[x]
            neighbor_hosts = shard.neighbor_hosts
            if not updates or not neighbor_hosts:
                # nothing "has to be sent to another host" (Figure 5)
                return
            deliver = shard.deliver
            if broadcast:
                # one transmission; every estimate counted once, every
                # neighbour host receives a message (even an irrelevant
                # one — only border pairs are actually delivered, the
                # rest the object engine's fold would ignore anyway)
                estimates_sent[x] += len(updates)
                for u, k in updates:
                    for y, s in deliver[u]:
                        in_slots[y].append(s)
                        in_vals[y].append(k)
                for y in neighbor_hosts:
                    in_msgs[y] += 1
                count = len(neighbor_hosts)
                sent_msgs[x] += count
                pending += count
                sends += count
            elif not p2p_filter:
                # per-destination subsets; a message exists only where
                # the subset is non-empty, and each (estimate,
                # destination) pair costs one overhead unit
                touched: list[int] = []
                for u, k in updates:
                    for y, s in deliver[u]:
                        in_slots[y].append(s)
                        in_vals[y].append(k)
                        c = host_counts[y]
                        if not c:
                            touched.append(y)
                        host_counts[y] = c + 1
                for y in touched:
                    estimates_sent[x] += host_counts[y]
                    host_counts[y] = 0
                    in_msgs[y] += 1
                    sent_msgs[x] += 1
                    pending += 1
                    sends += 1
            else:
                # the §3.1.2-style host-level filter consults this
                # shard's stored external estimates per (node, host)
                est = est_list[x]
                n_owned = shard.n_owned
                dest_slots = shard.dest_slots
                for y in neighbor_hosts:
                    dest_get = dest_slots[y].get
                    remote = shard.remote_slots[y]
                    slots = in_slots[y]
                    vals = in_vals[y]
                    count = 0
                    for u, k in updates:
                        s = dest_get(u)
                        if s is None:  # u has no neighbour on y
                            continue
                        if not any(
                            est[n_owned + t] > k for t in remote[u]
                        ):
                            continue
                        slots.append(s)
                        vals.append(k)
                        count += 1
                    if count:
                        estimates_sent[x] += count
                        in_msgs[y] += 1
                        sent_msgs[x] += 1
                        pending += 1
                        sends += 1

        # -- Algorithm 3 initialisation: degrees in, cascade, full send
        def on_init(x: int) -> None:
            shard = shards[x]
            est = est_list[x]
            n_owned = shard.n_owned
            with tracer.span("kernel.seed_shard", host=x):
                dirty = kb.seed_shard(
                    sh_offsets[x], sh_targets[x], n_owned, shard.n_ext,
                    INFINITY_INT, est, sup_list[x], queued[x],
                )
            if len(dirty):
                with tracer.span("kernel.cascade", host=x):
                    kb.cascade(
                        sh_offsets[x], sh_targets[x], n_owned, est,
                        sup_list[x], dirty, queued[x], changed_flag[x],
                        changed_lists[x], scratch,
                    )
            # the initial message carries *all* owned estimates
            with tracer.span("emit", host=x):
                emit(x, [(u, int(est[u])) for u in range(n_owned)])
            flags = changed_flag[x]
            for u in changed_lists[x]:
                flags[u] = 0
            changed_lists[x].clear()

        # -- one activation: fold mailbox, cascade, transmit changes
        def activate(x: int) -> None:
            nonlocal pending
            shard = shards[x]
            est = est_list[x]
            n_owned = shard.n_owned
            msgs = mb_msgs[x]
            if msgs:
                pending -= msgs
                mb_msgs[x] = 0
                slots = mb_slots[x]
                vals = mb_vals[x]
                with tracer.span("kernel.fold_mailbox", host=x):
                    dirty = kb.fold_mailbox(
                        slots, vals, n_owned, est, sup_list[x],
                        sh_watch_offsets[x], sh_watch_targets[x], queued[x],
                    )
                slots.clear()
                vals.clear()
                if len(dirty):
                    with tracer.span("kernel.cascade", host=x):
                        kb.cascade(
                            sh_offsets[x], sh_targets[x], n_owned, est,
                            sup_list[x], dirty, queued[x], changed_flag[x],
                            changed_lists[x], scratch,
                        )
            clist = changed_lists[x]
            if clist:
                with tracer.span("emit", host=x):
                    emit(x, [(u, int(est[u])) for u in clist])
                flags = changed_flag[x]
                for u in clist:
                    flags[u] = 0
                clist.clear()

        # recorder state: per-shard prev copies of the owned estimates
        # plus per-(shard, recorder) reference slices — allocated only
        # when a recorder is attached
        if recorders:
            ids = sharded.csr.ids
            prev_lists = [[-1] * s.n_owned for s in shards]
            refs_by_shard = [
                [
                    reference_slice(
                        rec.reference, [ids[g] for g in s.owned_global]
                    )
                    for rec in recorders
                ]
                for s in shards
            ]

        def record_round(round_number: int, round_sends: int) -> None:
            changed = 0
            errors: "list[int | None]" = [
                0 if rec.reference is not None else None for rec in recorders
            ]
            for x in range(num_hosts):
                shard_changed, shard_errors = diff_round(
                    est_list[x], prev_lists[x], refs_by_shard[x]
                )
                changed += shard_changed
                for j, err in enumerate(shard_errors):
                    if err is not None:
                        errors[j] += err
            for rec, err in zip(recorders, errors):
                rec.record(round_number, round_sends, changed, err)

        # -- round 1: on_init in activation order. Under peersim the
        # shuffle still runs (keeping the RNG stream aligned with the
        # object engine) even though on_init never reads a mailbox.
        base = list(range(num_hosts))
        rnd = 1
        if peersim:
            order = base[:]
            rng.shuffle(order)
        else:
            order = base
        with tracer.span("round", round=1):
            for x in order:
                on_init(x)
        stats.sends_per_round.append(sends)
        if sends:
            stats.execution_time += 1
        if recorders:
            record_round(rnd, sends)

        while sends or pending:
            if rnd >= self.max_rounds:
                stats.converged = False
                stats.rounds_executed = rnd
                export_send_counts(stats, sent_msgs)
                stats.wall_seconds = _time.perf_counter() - start
                if self.strict:
                    raise ConvergenceError(rnd)
                return stats
            rnd += 1
            sends = 0
            with tracer.span("round", round=rnd) as round_span:
                if peersim:
                    order = base[:]
                    rng.shuffle(order)
                else:
                    # flip buffers: last round's sends become this
                    # round's mail (the previous live buffers were
                    # fully drained)
                    mb_slots, in_slots = in_slots, mb_slots
                    mb_vals, in_vals = in_vals, mb_vals
                    mb_msgs, in_msgs = in_msgs, mb_msgs
                for x in order:
                    activate(x)
                round_span.note(sends=sends)
            stats.sends_per_round.append(sends)
            if sends:
                stats.execution_time += 1
            if recorders:
                record_round(rnd, sends)

        stats.rounds_executed = rnd
        export_send_counts(stats, sent_msgs)
        stats.wall_seconds = _time.perf_counter() - start
        return stats
