"""Round-based simulation engine (the PeerSim cycle engine stand-in).

Two delivery disciplines are supported:

``"lockstep"``
    The synchronous model of the paper's Section 4 analysis: all
    messages sent during round ``r`` are delivered at the start of round
    ``r+1``; processes are activated in deterministic id order. Used for
    the theoretical-bound experiments, where the round count must match
    the proofs exactly (worst-case graph: ``N-1`` rounds; chain:
    ``ceil(N/2)``).

``"peersim"``
    PeerSim's cycle semantics, used for the paper's Section 5
    experiments: each round activates processes in a fresh random order,
    and a message reaches its destination's mailbox immediately — so a
    process activated *later* in the same round already sees messages
    sent *earlier* in that round. The paper's 50 repetitions "differ in
    the (random) order with which operations performed at different
    nodes are considered in the simulation"; the spread of t_min/t_max
    in Table 1 comes exactly from this.

Termination: the engine stops after the first executed round in which no
message was sent and no mailbox holds an undelivered message. The
paper's *execution time* metric (rounds with at least one send,
including the final ineffective broadcast round) is reported as
``SimulationStats.execution_time``.
"""

from __future__ import annotations

import random
import time as _time
from typing import Callable, Iterable, Mapping, Sequence

from repro.errors import ConvergenceError, SimulationError
from repro.sim.metrics import SimulationStats
from repro.sim.node import Message, Process
from repro.telemetry.spans import resolve_tracer
from repro.utils.rng import make_rng

__all__ = ["RoundEngine"]

#: Observer signature: called after every executed round.
Observer = Callable[[int, "RoundEngine"], None]


class _RoundContext:
    """Context implementation for :class:`RoundEngine`."""

    __slots__ = ("_engine", "pid")

    def __init__(self, engine: "RoundEngine") -> None:
        self._engine = engine
        self.pid = -1

    @property
    def round(self) -> int:
        return self._engine.round

    @property
    def time(self) -> float:
        return float(self._engine.round)

    def send(self, dest: int, payload: object) -> None:
        self._engine._enqueue(self.pid, dest, payload)


class RoundEngine:
    """Executes a set of :class:`Process` objects in rounds.

    Parameters
    ----------
    processes:
        The processes, as a mapping ``{pid: process}`` or an iterable
        (pids are taken from ``process.pid``).
    mode:
        ``"peersim"`` (default) or ``"lockstep"``; see module docstring.
    seed:
        Seed for the per-round activation order (peersim mode only).
    max_rounds:
        Hard stop; exceeding it raises :class:`ConvergenceError` when
        ``strict`` else marks the run ``converged=False``.
    observers:
        Callables invoked as ``observer(round_number, engine)`` after
        every executed round — used for error traces and completion
        tables.
    telemetry:
        ``True``/``False`` or a :class:`repro.telemetry.Tracer`; when
        enabled, every executed round is bracketed in a ``"round"``
        span. Tracing is a pure observer — it never affects delivery
        order, sends, or termination.
    """

    def __init__(
        self,
        processes: Mapping[int, Process] | Iterable[Process],
        mode: str = "peersim",
        seed: int | random.Random | None = 0,
        max_rounds: int = 1_000_000,
        strict: bool = True,
        observers: Sequence[Observer] = (),
        telemetry: object = None,
    ) -> None:
        if isinstance(processes, Mapping):
            self.processes: dict[int, Process] = dict(processes)
        else:
            self.processes = {p.pid: p for p in processes}
        if mode not in ("peersim", "lockstep"):
            raise SimulationError(f"unknown engine mode {mode!r}")
        self.mode = mode
        self.rng = make_rng(seed)
        self.max_rounds = max_rounds
        self.strict = strict
        self.observers = list(observers)
        self.tracer = resolve_tracer(telemetry)
        self.round = 0
        self.stats = SimulationStats()
        self._ctx = _RoundContext(self)
        # peersim: one live mailbox per process; lockstep: double buffer.
        self._mailboxes: dict[int, list[Message]] = {
            pid: [] for pid in self.processes
        }
        self._next_mailboxes: dict[int, list[Message]] = {
            pid: [] for pid in self.processes
        }
        self._sends_this_round = 0
        # undelivered messages across both buffers, maintained so the
        # quiescence check is O(1) instead of a full mailbox scan
        self._pending_messages = 0

    # ------------------------------------------------------------------
    def _enqueue(self, sender: int, dest: int, payload: object) -> None:
        if dest not in self.processes:
            raise SimulationError(
                f"process {sender} sent to unknown process {dest}"
            )
        self._sends_this_round += 1
        self._pending_messages += 1
        self.stats.merge_send(sender)
        if self.mode == "peersim":
            self._mailboxes[dest].append((sender, payload))
        else:
            self._next_mailboxes[dest].append((sender, payload))

    def _activation_order(self) -> list[int]:
        pids = list(self.processes)
        if self.mode == "peersim":
            self.rng.shuffle(pids)
        else:
            pids.sort()
        return pids

    def _pending_mail(self) -> bool:
        return self._pending_messages > 0

    # ------------------------------------------------------------------
    def run(self) -> SimulationStats:
        """Run to quiescence (or ``max_rounds``); returns the stats."""
        start = _time.perf_counter()
        ctx = self._ctx

        # Round 1: initialisation broadcasts.
        self.round = 1
        self._sends_this_round = 0
        with self.tracer.span("round", round=1):
            for pid in self._activation_order():
                ctx.pid = pid
                self.processes[pid].on_init(ctx)
            self._finish_round()

        while True:
            if self._sends_last_round == 0 and not self._pending_mail():
                break
            if self.round >= self.max_rounds:
                self.stats.converged = False
                self.stats.rounds_executed = self.round
                self.stats.wall_seconds = _time.perf_counter() - start
                if self.strict:
                    raise ConvergenceError(self.round)
                return self.stats
            self.round += 1
            self._sends_this_round = 0
            with self.tracer.span("round", round=self.round):
                if self.mode == "lockstep":
                    # flip buffers: last round's sends become this
                    # round's mail
                    self._mailboxes, self._next_mailboxes = (
                        self._next_mailboxes,
                        self._mailboxes,
                    )
                for pid in self._activation_order():
                    ctx.pid = pid
                    process = self.processes[pid]
                    mailbox = self._mailboxes[pid]
                    if mailbox:
                        self._mailboxes[pid] = []
                        self._pending_messages -= len(mailbox)
                        process.on_messages(ctx, mailbox)
                    process.on_round(ctx)
                self._finish_round()

        self.stats.rounds_executed = self.round
        self.stats.wall_seconds = _time.perf_counter() - start
        return self.stats

    def _finish_round(self) -> None:
        self.stats.sends_per_round.append(self._sends_this_round)
        if self._sends_this_round > 0:
            self.stats.execution_time += 1
        self._sends_last_round = self._sends_this_round
        for observer in self.observers:
            observer(self.round, self)

    # ------------------------------------------------------------------
    def process(self, pid: int) -> Process:
        """Look up a process by id (observer convenience)."""
        return self.processes[pid]
