"""Simulation run statistics.

The paper's two figures of merit (Section 5.1) are *execution time* —
"the number of rounds in which at least one node sends an update
message" — and *messages exchanged per node*. :class:`SimulationStats`
carries both, plus the raw per-round send counts used by the error-trace
and core-completion analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SimulationStats"]


@dataclass
class SimulationStats:
    """Outcome of one engine run."""

    #: Rounds actually executed (including the final quiet round).
    rounds_executed: int = 0
    #: The paper's execution time: rounds with >= 1 message sent.
    execution_time: int = 0
    #: Total messages sent (point-to-point count).
    total_messages: int = 0
    #: Messages sent by each process id.
    sent_per_process: dict[int, int] = field(default_factory=dict)
    #: Messages sent during each round (index 0 == round 1).
    sends_per_round: list[int] = field(default_factory=list)
    #: False when the engine hit ``max_rounds`` before quiescence.
    converged: bool = True
    #: Wall-clock seconds consumed by the run.
    wall_seconds: float = 0.0
    #: Protocol-specific extras (e.g. one-to-many "estimates sent").
    extra: dict = field(default_factory=dict)

    @property
    def messages_avg(self) -> float:
        """Average messages sent per process (the paper's m_avg)."""
        if not self.sent_per_process:
            return 0.0
        return self.total_messages / len(self.sent_per_process)

    @property
    def messages_max(self) -> int:
        """Maximum messages sent by any process (the paper's m_max)."""
        if not self.sent_per_process:
            return 0
        return max(self.sent_per_process.values())

    def merge_send(self, sender: int, count: int = 1) -> None:
        """Record ``count`` messages sent by ``sender`` (engine use)."""
        self.total_messages += count
        self.sent_per_process[sender] = (
            self.sent_per_process.get(sender, 0) + count
        )

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"rounds={self.execution_time} (executed {self.rounds_executed}), "
            f"messages={self.total_messages} "
            f"(avg {self.messages_avg:.2f}/node, max {self.messages_max}), "
            f"converged={self.converged}, "
            f"wall={self.wall_seconds:.3f}s"
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe snapshot of every field (including ``extra``).

        Round-trips through :meth:`from_dict`; benchmark harnesses and
        the telemetry exporters persist stats this way. ``extra`` is
        included as-is — every registered key is JSON-serialisable by
        schema (:mod:`repro.telemetry.registry`).
        """
        return {
            "rounds_executed": self.rounds_executed,
            "execution_time": self.execution_time,
            "total_messages": self.total_messages,
            # JSON objects have string keys; from_dict restores ints
            "sent_per_process": {
                str(pid): count for pid, count in self.sent_per_process.items()
            },
            "sends_per_round": list(self.sends_per_round),
            "converged": self.converged,
            "wall_seconds": self.wall_seconds,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SimulationStats":
        """Rebuild stats from :meth:`to_dict` output (or parsed JSON)."""
        return cls(
            rounds_executed=payload["rounds_executed"],
            execution_time=payload["execution_time"],
            total_messages=payload["total_messages"],
            sent_per_process={
                int(pid): count
                for pid, count in payload["sent_per_process"].items()
            },
            sends_per_round=list(payload["sends_per_round"]),
            converged=payload["converged"],
            wall_seconds=payload["wall_seconds"],
            extra=dict(payload["extra"]),
        )
