"""Synthetic churn traces for live-overlay experiments.

The paper's one-to-one scenario is a running P2P system; real
deployments churn. This module generates reproducible churn traces in
the style of P2P measurement studies: Poisson joins, exponential
session lengths (so departures follow the current population), and
rewiring. Traces drive the streaming-maintenance benchmarks and the
``live_overlay_churn`` example, and double as fuzzing input for the
:class:`~repro.streaming.DynamicKCore` property tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Literal

from repro.errors import ConfigurationError
from repro.graph.graph import Graph
from repro.utils.rng import make_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.streaming import DynamicKCore, FlatDynamicKCore

__all__ = ["ChurnEvent", "ChurnTrace", "generate_churn_trace", "replay_trace"]

EventKind = Literal["join", "leave", "link", "unlink"]


@dataclass(frozen=True)
class ChurnEvent:
    """One timestamped overlay event."""

    time: float
    kind: EventKind
    #: ``join``: (new_node, contact...); ``leave``: (node,);
    #: ``link``/``unlink``: (u, v).
    nodes: tuple[int, ...]


@dataclass
class ChurnTrace:
    """A replayable sequence of churn events plus its seed graph."""

    initial: Graph
    events: list[ChurnEvent] = field(default_factory=list)

    def __iter__(self) -> Iterator[ChurnEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out


def generate_churn_trace(
    initial: Graph,
    duration: float = 100.0,
    join_rate: float = 0.5,
    mean_session: float = 60.0,
    rewire_rate: float = 0.3,
    contacts_per_join: int = 2,
    seed: int | None = 0,
) -> ChurnTrace:
    """Generate a churn trace over ``initial``.

    Joins arrive Poisson(``join_rate``); each alive peer leaves after an
    Exp(``mean_session``) lifetime; rewires (drop one link, add another)
    arrive Poisson(``rewire_rate``). All times are simulated seconds;
    the event list is sorted by time and fully determined by ``seed``.
    """
    if duration <= 0 or join_rate < 0 or rewire_rate < 0:
        raise ConfigurationError("invalid churn parameters")
    if mean_session <= 0 or contacts_per_join < 1:
        raise ConfigurationError("invalid churn parameters")
    rng = make_rng(seed)

    def exponential(rate: float) -> float:
        return rng.expovariate(rate) if rate > 0 else math.inf

    # simulate the overlay state so events stay valid when replayed
    state = initial.copy()
    next_id = (max(state.nodes()) + 1) if state.num_nodes else 0
    departures: list[tuple[float, int]] = [
        (exponential(1.0 / mean_session), u) for u in state.nodes()
    ]
    events: list[ChurnEvent] = []
    now = 0.0
    next_join = exponential(join_rate)
    next_rewire = exponential(rewire_rate)
    while True:
        next_leave = min(departures, default=(math.inf, -1))
        now = min(next_join, next_rewire, next_leave[0])
        if now > duration:
            break
        if now == next_join:
            population = sorted(state.nodes())
            contacts = tuple(
                rng.sample(
                    population, min(contacts_per_join, len(population))
                )
            )
            state.add_node(next_id)
            for contact in contacts:
                state.add_edge(next_id, contact, strict=False)
            events.append(ChurnEvent(now, "join", (next_id, *contacts)))
            departures.append(
                (now + exponential(1.0 / mean_session), next_id)
            )
            next_id += 1
            next_join = now + exponential(join_rate)
        elif now == next_leave[0]:
            departures.remove(next_leave)
            victim = next_leave[1]
            if state.has_node(victim) and state.num_nodes > 3:
                state.remove_node(victim)
                events.append(ChurnEvent(now, "leave", (victim,)))
            next_rewire = max(next_rewire, now)
        else:
            edges = sorted(state.edges())
            if edges and state.num_nodes >= 4:
                u, v = edges[rng.randrange(len(edges))]
                population = sorted(state.nodes())
                for _ in range(20):
                    a, b = rng.sample(population, 2)
                    if not state.has_edge(a, b):
                        state.remove_edge(u, v)
                        state.add_edge(a, b)
                        events.append(ChurnEvent(now, "unlink", (u, v)))
                        events.append(ChurnEvent(now, "link", (a, b)))
                        break
            next_rewire = now + exponential(rewire_rate)
    return ChurnTrace(initial=initial.copy(), events=events)


def _make_engine(engine, trace, backend, telemetry):
    from repro.streaming import DynamicKCore, FlatDynamicKCore

    if engine is None or engine == "object":
        return DynamicKCore(trace.initial)
    if engine == "flat":
        return FlatDynamicKCore(
            trace.initial, backend=backend, telemetry=telemetry
        )
    if isinstance(engine, str):
        raise ConfigurationError(
            f"unknown replay engine {engine!r} (use 'object' or 'flat')"
        )
    return engine


def replay_trace(
    trace: ChurnTrace,
    engine: "DynamicKCore | FlatDynamicKCore | str | None" = None,
    verify_every: int | None = None,
    *,
    backend=None,
    batch_size: int = 1,
    telemetry=None,
) -> "DynamicKCore | FlatDynamicKCore":
    """Apply a trace to a maintenance engine (created if omitted).

    ``engine`` selects the implementation: ``"object"``/``None`` for the
    :class:`~repro.streaming.DynamicKCore` oracle, ``"flat"`` for the
    dynamic-CSR :class:`~repro.streaming.FlatDynamicKCore` (``backend``
    picks its kernel backend), or an already-constructed engine of
    either kind.

    The returned engine's ``metrics`` dict surfaces maintenance cost —
    ``edits_applied``, ``dirty_nodes_total`` and the per-batch
    ``dirty_nodes_per_batch`` series (plus ``compactions`` and
    ``reconverge_rounds_per_batch`` on the flat engine) — validated
    against the telemetry registry before returning. Wall time per
    batch is a telemetry concern: pass ``telemetry=`` and read the
    ``churn.apply_batch`` spans.

    ``batch_size`` groups events into ``apply_events`` batches on the
    flat engine (the object oracle always replays per-event).
    ``verify_every`` cross-checks the maintained coreness against full
    recomputation every N events (slow; for tests).
    """
    from repro.streaming import FlatDynamicKCore
    from repro.telemetry.registry import validate_extra

    if batch_size < 1:
        raise ConfigurationError("batch_size must be >= 1")
    engine = _make_engine(engine, trace, backend, telemetry)

    def checkpoint(index: int) -> None:
        if verify_every and index % verify_every == 0:
            if not engine.verify():
                raise AssertionError(
                    f"maintained coreness diverged after event {index}"
                )

    if isinstance(engine, FlatDynamicKCore):
        events = trace.events
        step = batch_size if not verify_every else min(
            batch_size, verify_every
        )
        for at in range(0, len(events), step):
            engine.apply_events(events[at:at + step])
            checkpoint(at + step)
        validate_extra(engine.metrics, "replay_trace metrics")
        return engine

    for index, event in enumerate(trace.events, start=1):
        if event.kind == "join":
            new, *contacts = event.nodes
            engine.add_node(new)
            for contact in contacts:
                if engine.graph.has_node(contact):
                    engine.insert_edge(new, contact)
        elif event.kind == "leave":
            (victim,) = event.nodes
            if engine.graph.has_node(victim):
                engine.remove_node(victim)
        elif event.kind == "link":
            u, v = event.nodes
            if (
                engine.graph.has_node(u)
                and engine.graph.has_node(v)
                and not engine.graph.has_edge(u, v)
            ):
                engine.insert_edge(u, v)
        else:  # unlink
            u, v = event.nodes
            if engine.graph.has_edge(u, v):
                engine.delete_edge(u, v)
        checkpoint(index)
    validate_extra(engine.metrics, "replay_trace metrics")
    return engine
