"""Workload generators: churn traces for "live" overlay experiments."""

from repro.workloads.churn import (
    ChurnEvent,
    ChurnTrace,
    generate_churn_trace,
    replay_trace,
)

__all__ = [
    "ChurnEvent",
    "ChurnTrace",
    "generate_churn_trace",
    "replay_trace",
]
