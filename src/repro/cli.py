"""Command-line interface: ``python -m repro`` / ``repro-kcore``.

Subcommands:

* ``decompose`` — compute the coreness of an edge-list file (or a named
  synthetic dataset) with any of the implemented algorithms.
* ``stats`` — print the Table-1-style structural summary of a graph.
* ``table1`` — regenerate the paper's Table 1 over the dataset registry.
* ``churn`` — replay a synthetic churn trace through a streaming
  maintenance engine (``--engine flat --backend numpy`` for the
  dynamic-CSR fast path) and report the maintenance cost.
* ``datasets`` — list the registered dataset stand-ins.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.api import ALGORITHMS, decompose
from repro.errors import ConfigurationError
from repro.graph.io import read_edge_list
from repro.graph.stats import compute_stats
from repro.utils.tables import format_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-kcore",
        description="Distributed k-core decomposition (PODC 2011 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    dec = sub.add_parser("decompose", help="compute coreness of a graph")
    source = dec.add_mutually_exclusive_group(required=True)
    source.add_argument("--edges", help="path to a SNAP-style edge list")
    source.add_argument("--dataset", help="name of a registered dataset")
    source.add_argument(
        "--resume", metavar="CHECKPOINT_DIR",
        help="resume an interrupted --engine mp run from its checkpoint "
        "directory (graph, algorithm and all engine settings come from "
        "the checkpoint manifest, so no other flags apply)",
    )
    dec.add_argument(
        "--algorithm", default=None, choices=sorted(ALGORITHMS),
        help="decomposition algorithm (default one-to-one)",
    )
    dec.add_argument("--hosts", type=int, default=None,
                     help="host count (one-to-many and pregel; default 4)")
    dec.add_argument(
        "--engine", default=None, choices=("round", "flat", "mp", "async"),
        help="execution engine for one-to-one, one-to-many and pregel "
        "(default round; flat = CSR fast path, sharded for one-to-many; "
        "mp = one OS process per host shard, one-to-many only)",
    )
    dec.add_argument(
        "--workers", type=int, default=None,
        help="worker process count for --engine mp (one OS process per "
        "host shard, so this sets the host count; >= 2)",
    )
    dec.add_argument(
        "--backend", default=None, choices=("stdlib", "numpy"),
        help="flat-kernel backend for the flat engines and baselines "
        "(default stdlib; numpy = vectorised kernels, bit-identical "
        "results, rejected by the config layer when numpy is not "
        "installed or the target engine runs no kernels)",
    )
    dec.add_argument(
        "--mode", default=None, choices=("peersim", "lockstep"),
        help="activation mode for the round/flat engines; applies to "
        "one-to-one/one-to-many (default peersim) and one-to-one-flat "
        "(default lockstep)",
    )
    dec.add_argument(
        "--communication", default=None, choices=("broadcast", "p2p"),
        help="host-to-host medium (one-to-many only; default broadcast)",
    )
    dec.add_argument(
        "--policy", default=None,
        choices=("modulo", "block", "random", "bfs", "refined"),
        help="node->host placement policy (one-to-many only; "
        "default the paper's modulo; refined = modulo post-processed "
        "by a greedy cut-reducing boundary pass)",
    )
    dec.add_argument(
        "--transport", default=None, choices=("queue", "shm"),
        help="estimate transport for --engine mp (default queue = "
        "pickled batches over process queues; shm = zero-pickle "
        "shared-memory mailbox rings, bit-identical results)",
    )
    dec.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="--engine mp only: snapshot the fleet every N rounds into "
        "--checkpoint-dir (atomic, resumable with --resume)",
    )
    dec.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="directory for --checkpoint-every snapshots (required "
        "together with it)",
    )
    dec.add_argument(
        "--telemetry", action="store_true",
        help="trace the run (rounds, kernel phases, and per-worker "
        "lanes under --engine mp) and print a span summary table; a "
        "pure observer — results are bit-identical either way",
    )
    dec.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write the collected trace to PATH — Chrome trace-event "
        "JSON loadable in Perfetto / chrome://tracing (or JSON Lines "
        "when PATH ends in .jsonl); implies --telemetry",
    )
    dec.add_argument("--seed", type=int, default=0)
    dec.add_argument("--scale", type=float, default=1.0,
                     help="dataset scale factor (synthetic datasets only)")
    dec.add_argument("--top", type=int, default=10,
                     help="print the TOP nodes by coreness")

    stats = sub.add_parser("stats", help="structural summary of a graph")
    stats_source = stats.add_mutually_exclusive_group(required=True)
    stats_source.add_argument("--edges")
    stats_source.add_argument("--dataset")
    stats.add_argument("--scale", type=float, default=1.0)
    stats.add_argument("--seed", type=int, default=0)

    table1 = sub.add_parser("table1", help="regenerate the paper's Table 1")
    table1.add_argument("--scale", type=float, default=1.0)
    table1.add_argument("--repetitions", type=int, default=5)
    table1.add_argument("--seed", type=int, default=0)
    table1.add_argument(
        "--only", nargs="*", default=None, help="subset of dataset names"
    )
    table1.add_argument(
        "--engine", default="round", choices=("round", "flat"),
        help="run the repetitions on the object or the flat CSR engine "
        "(bit-identical results; flat is faster at scale)",
    )

    churn = sub.add_parser(
        "churn",
        help="replay a synthetic churn trace through a maintenance engine",
    )
    churn_source = churn.add_mutually_exclusive_group(required=True)
    churn_source.add_argument("--edges", help="path to a SNAP-style edge list")
    churn_source.add_argument("--dataset", help="name of a registered dataset")
    churn.add_argument("--scale", type=float, default=0.3,
                       help="dataset scale factor (synthetic datasets only)")
    churn.add_argument("--seed", type=int, default=0,
                       help="seeds both the graph and the trace")
    churn.add_argument("--duration", type=float, default=100.0,
                       help="simulated seconds of churn")
    churn.add_argument("--join-rate", type=float, default=0.5)
    churn.add_argument("--mean-session", type=float, default=60.0)
    churn.add_argument("--rewire-rate", type=float, default=0.3)
    churn.add_argument(
        "--engine", default="flat", choices=("object", "flat"),
        help="maintenance engine: the object-graph oracle or the "
        "dynamic-CSR flat engine (default flat; bit-identical coreness)",
    )
    churn.add_argument(
        "--backend", default=None, choices=("stdlib", "numpy"),
        help="kernel backend for --engine flat (default stdlib)",
    )
    churn.add_argument(
        "--batch-size", type=int, default=64, metavar="N",
        help="events per apply_events batch on the flat engine "
        "(the object oracle always replays per-event)",
    )
    churn.add_argument(
        "--verify-every", type=int, default=None, metavar="N",
        help="cross-check against full recomputation every N events "
        "(slow; for spot checks)",
    )
    churn.add_argument(
        "--telemetry", action="store_true",
        help="trace the replay (churn.apply_batch / kernel.reconverge / "
        "csr.compact spans) and print a span summary table",
    )
    churn.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write the collected trace to PATH (Chrome trace-event "
        "JSON, or JSON Lines when PATH ends in .jsonl); implies "
        "--telemetry",
    )
    churn.add_argument("--top", type=int, default=10,
                       help="print the TOP nodes by final coreness")

    sub.add_parser("datasets", help="list registered datasets")

    fingerprint = sub.add_parser(
        "fingerprint", help="ASCII k-core fingerprint (LaNet-vi style)"
    )
    fp_source = fingerprint.add_mutually_exclusive_group(required=True)
    fp_source.add_argument("--edges")
    fp_source.add_argument("--dataset")
    fingerprint.add_argument("--scale", type=float, default=0.3)
    fingerprint.add_argument("--seed", type=int, default=0)
    fingerprint.add_argument("--width", type=int, default=72)
    fingerprint.add_argument("--height", type=int, default=30)
    return parser


def _load_graph(args: argparse.Namespace):
    from repro.datasets import load

    if getattr(args, "edges", None):
        return read_edge_list(args.edges)
    return load(args.dataset, scale=args.scale, seed=args.seed if hasattr(args, "seed") else 0)


def _print_result(result, top: int) -> None:
    print(
        f"algorithm: {result.algorithm}  k_max={result.max_coreness}  "
        f"k_avg={result.average_coreness:.2f}"
    )
    if result.stats.rounds_executed:
        print(
            f"rounds={result.stats.execution_time}  "
            f"messages={result.stats.total_messages}"
        )
    rows = [
        (node, result.coreness[node])
        for node in result.top_spreaders(top)
    ]
    print(format_table(("node", "coreness"), rows, title="top nodes"))
    shells = result.shell_sizes()
    print(format_table(
        ("k", "shell size"), sorted(shells.items()), title="shell sizes"
    ))


#: Algorithms whose configs accept ``telemetry`` / ``trace_out``.
_TELEMETRY_ALGORITHMS = (
    "one-to-one", "one-to-one-flat",
    "one-to-many", "one-to-many-flat", "one-to-many-mp",
)


def _make_tracer(args: argparse.Namespace, engine_is_mp: bool):
    """The CLI's tracer (or ``None``): built here, not in the config
    layer, so the summary table can be printed after the run."""
    if not (args.telemetry or args.trace_out):
        return None
    from repro.telemetry import Tracer

    return Tracer(lane="coordinator" if engine_is_mp else "main")


def _print_telemetry(tracer, trace_out: "str | None") -> None:
    if tracer is None:
        return
    from repro.telemetry import summary_table

    print(summary_table(tracer.buffers()))
    if trace_out:
        print(f"trace written: {trace_out}")


def _cmd_decompose(args: argparse.Namespace) -> int:
    if args.resume is not None:
        # everything about a resumed run — graph, algorithm, engine
        # settings — is fixed by the checkpoint manifest; a flag that
        # tried to change any of it would be silently ignored, so
        # reject instead
        for flag, value in (
            ("--algorithm", args.algorithm),
            ("--hosts", args.hosts),
            ("--engine", args.engine),
            ("--workers", args.workers),
            ("--backend", args.backend),
            ("--mode", args.mode),
            ("--communication", args.communication),
            ("--policy", args.policy),
            ("--transport", args.transport),
            ("--checkpoint-every", args.checkpoint_every),
            ("--checkpoint-dir", args.checkpoint_dir),
        ):
            if value is not None:
                raise ConfigurationError(
                    f"{flag} cannot be combined with --resume: a resumed "
                    "run takes every setting from the checkpoint "
                    "manifest (further checkpoints keep landing in the "
                    "same directory)"
                )
        from repro.core.one_to_many_mp import resume_from_checkpoint

        # --telemetry/--trace-out are deliberately allowed with
        # --resume: spans are observations, not checkpointed protocol
        # state, so tracing the resumed portion changes nothing
        tracer = _make_tracer(args, engine_is_mp=True)
        result = resume_from_checkpoint(
            args.resume, telemetry=tracer, trace_out=args.trace_out
        )
        print(
            f"resumed: {args.resume}  nodes={len(result.coreness)}  "
            f"from_round={result.stats.extra.get('resumed_from_round')}"
        )
        _print_result(result, args.top)
        _print_telemetry(tracer, args.trace_out)
        return 0
    if args.algorithm is None:
        args.algorithm = "one-to-one"
    graph = _load_graph(args)
    # conflicting combinations (--engine async with --mode, --engine on
    # a -flat algorithm, ...) are forwarded as given: the config layer
    # rejects them with a precise ConfigurationError instead of the CLI
    # silently dropping a flag the user typed
    options: dict[str, object] = {}
    if args.engine is not None and args.algorithm in ("bz", "peeling", "hindex"):
        raise ConfigurationError(
            f"--engine has no meaning for algorithm {args.algorithm!r}: "
            "the sequential baselines have a single implementation"
        )
    if args.mode is not None and args.algorithm in (
        "bz", "peeling", "hindex", "pregel",
    ):
        raise ConfigurationError(
            f"--mode has no meaning for algorithm {args.algorithm!r}: "
            "activation modes belong to the one-to-one/one-to-many engines"
        )
    if args.workers is not None and args.algorithm not in (
        "one-to-many", "one-to-many-flat", "one-to-many-mp",
    ):
        raise ConfigurationError(
            f"--workers has no meaning for algorithm {args.algorithm!r}: "
            "it sets the process count of the one-to-many mp engine "
            "(one OS process per host shard)"
        )
    if args.transport is not None and args.algorithm not in (
        "one-to-many", "one-to-many-flat", "one-to-many-mp",
    ):
        raise ConfigurationError(
            f"--transport has no meaning for algorithm {args.algorithm!r}: "
            "it selects the one-to-many mp engine's estimate transport"
        )
    if (
        args.checkpoint_every is not None or args.checkpoint_dir is not None
    ) and args.algorithm not in (
        "one-to-many", "one-to-many-flat", "one-to-many-mp",
    ):
        raise ConfigurationError(
            "--checkpoint-every/--checkpoint-dir have no meaning for "
            f"algorithm {args.algorithm!r}: they configure the "
            "one-to-many mp fleet's snapshots"
        )
    if args.algorithm == "one-to-one":
        options["seed"] = args.seed
        options["engine"] = args.engine or "round"
        if args.mode is not None:
            options["mode"] = args.mode
    elif args.algorithm == "one-to-one-flat":
        options["seed"] = args.seed
        if args.engine is not None:
            options["engine"] = args.engine
        if args.mode is not None:
            options["mode"] = args.mode
    elif args.algorithm in (
        "one-to-many", "one-to-many-flat", "one-to-many-mp",
    ):
        options.update(seed=args.seed, num_hosts=args.hosts or 4)
        if args.algorithm == "one-to-many":
            options["engine"] = args.engine or "round"
        elif args.engine is not None:
            options["engine"] = args.engine
        engine_is_mp = (
            options.get("engine") == "mp"
            or args.algorithm == "one-to-many-mp"
        )
        if args.workers is not None:
            # one OS process per host shard: --workers IS the host count
            if not engine_is_mp:
                raise ConfigurationError(
                    "--workers sets the process count of --engine mp "
                    "(one OS process per host shard); for the "
                    "in-process engines use --hosts"
                )
            if args.hosts is not None and args.hosts != args.workers:
                raise ConfigurationError(
                    f"--hosts {args.hosts} conflicts with --workers "
                    f"{args.workers}: the mp engine runs one OS process "
                    "per host shard, so they name the same number — "
                    "pass just one"
                )
            options["num_hosts"] = args.workers
        if args.transport is not None:
            if not engine_is_mp:
                raise ConfigurationError(
                    "--transport selects the estimate transport of "
                    "--engine mp; the in-process engines move no bytes "
                    "between processes"
                )
            options["mp_transport"] = args.transport
        if engine_is_mp and args.mode is None:
            # the only mode a process fleet can replay; an explicit
            # --mode peersim still reaches the config layer's rejection
            options["mode"] = "lockstep"
        if args.checkpoint_every is not None or args.checkpoint_dir is not None:
            if args.checkpoint_every is None or args.checkpoint_dir is None:
                raise ConfigurationError(
                    "--checkpoint-every and --checkpoint-dir name one "
                    "policy (how often, where) and must be passed "
                    "together"
                )
            if not engine_is_mp:
                raise ConfigurationError(
                    "--checkpoint-every/--checkpoint-dir configure the "
                    "mp fleet's snapshots and need --engine mp (or "
                    "--algorithm one-to-many-mp): the in-process "
                    "engines cannot lose a worker"
                )
            from repro.sim.checkpoint import CheckpointPolicy

            options["checkpoint"] = CheckpointPolicy(
                every_n_rounds=args.checkpoint_every,
                dir=args.checkpoint_dir,
            )
        if args.mode is not None:
            options["mode"] = args.mode
        if args.communication is not None:
            options["communication"] = args.communication
        if args.policy is not None:
            options["policy"] = args.policy
    elif args.algorithm == "pregel":
        options["num_workers"] = args.hosts or 4
        if args.engine is not None:
            # the pregel paths are "object" (the BSP master) and
            # "flat"; map the shared --engine vocabulary onto them and
            # let the config layer reject what has no meaning there
            options["engine"] = (
                "object" if args.engine == "round" else args.engine
            )
    if args.backend is not None:
        if args.algorithm in (
            "one-to-one",
            "one-to-one-flat",
            "one-to-many",
            "one-to-many-flat",
            "hindex",
            "pregel",
        ):
            options["backend"] = args.backend
        else:
            # bz/peeling take no options at all; dropping the flag
            # silently would misreport what executed
            raise ConfigurationError(
                f"--backend has no meaning for algorithm "
                f"{args.algorithm!r}: it selects flat-kernel backends "
                "and the sequential baselines run no kernels"
            )
    tracer = None
    if args.telemetry or args.trace_out:
        if args.algorithm not in _TELEMETRY_ALGORITHMS:
            raise ConfigurationError(
                "--telemetry/--trace-out have no meaning for algorithm "
                f"{args.algorithm!r}: span tracing instruments the "
                "one-to-one/one-to-many engines "
                f"({', '.join(_TELEMETRY_ALGORITHMS)})"
            )
        tracer = _make_tracer(
            args,
            engine_is_mp=(
                options.get("engine") == "mp"
                or args.algorithm == "one-to-many-mp"
            ),
        )
        options["telemetry"] = tracer
        options["trace_out"] = args.trace_out
    result = decompose(graph, args.algorithm, **options)
    print(
        f"graph: {graph.name or 'stdin'}  nodes={graph.num_nodes} "
        f"edges={graph.num_edges}"
    )
    print(
        f"algorithm: {result.algorithm}  k_max={result.max_coreness}  "
        f"k_avg={result.average_coreness:.2f}"
    )
    if result.stats.rounds_executed:
        print(
            f"rounds={result.stats.execution_time}  "
            f"messages={result.stats.total_messages}"
        )
    rows = [
        (node, result.coreness[node])
        for node in result.top_spreaders(args.top)
    ]
    print(format_table(("node", "coreness"), rows, title="top nodes"))
    shells = result.shell_sizes()
    print(format_table(
        ("k", "shell size"), sorted(shells.items()), title="shell sizes"
    ))
    _print_telemetry(tracer, args.trace_out)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.baselines.batagelj_zaversnik import batagelj_zaversnik

    graph = _load_graph(args)
    summary = compute_stats(graph, coreness=batagelj_zaversnik(graph))
    rows = [
        ("nodes", summary.num_nodes),
        ("edges", summary.num_edges),
        ("min degree", summary.min_degree),
        ("max degree", summary.max_degree),
        ("avg degree", round(summary.avg_degree, 2)),
        ("components", summary.num_components),
        ("largest component", summary.largest_component_size),
        ("diameter" + ("" if summary.diameter_is_exact else " (lower bound)"),
         summary.diameter),
        ("k_max", summary.coreness_max),
        ("k_avg", round(summary.coreness_avg or 0.0, 2)),
    ]
    print(format_table(("statistic", "value"), rows,
                       title=f"stats: {graph.name or 'graph'}"))
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.analysis.reports import Table1Row, table1_row
    from repro.datasets import PAPER_DATASETS

    rows = []
    for spec in PAPER_DATASETS:
        if args.only and spec.name not in args.only:
            continue
        graph = spec.build(scale=args.scale, seed=args.seed)
        row = table1_row(
            graph,
            repetitions=args.repetitions,
            seed=args.seed,
            engine=args.engine,
        )
        rows.append(row.as_list())
        print(f"... {spec.name} done", file=sys.stderr)
    print(format_table(Table1Row.HEADERS, rows, title="Table 1 (reproduced)"))
    return 0


def _cmd_churn(args: argparse.Namespace) -> int:
    from repro.workloads import generate_churn_trace, replay_trace

    if args.backend is not None and args.engine != "flat":
        raise ConfigurationError(
            "--backend selects the flat engine's kernel backend; the "
            "object oracle runs no kernels — use --engine flat"
        )
    graph = _load_graph(args)
    trace = generate_churn_trace(
        graph,
        duration=args.duration,
        join_rate=args.join_rate,
        mean_session=args.mean_session,
        rewire_rate=args.rewire_rate,
        seed=args.seed,
    )
    counts = trace.counts()
    print(
        f"graph: {graph.name or 'stdin'}  nodes={graph.num_nodes} "
        f"edges={graph.num_edges}"
    )
    print(
        f"trace: {len(trace)} events  "
        + "  ".join(f"{k}={counts.get(k, 0)}"
                    for k in ("join", "leave", "link", "unlink"))
    )
    tracer = None
    if args.telemetry or args.trace_out:
        from repro.telemetry import Tracer

        tracer = Tracer()
    engine = replay_trace(
        trace,
        engine=args.engine,
        verify_every=args.verify_every,
        backend=args.backend,
        batch_size=args.batch_size,
        telemetry=tracer,
    )
    metrics = engine.metrics
    batches = metrics["dirty_nodes_per_batch"]
    rows: "list[tuple[str, object]]" = [
        ("engine", args.engine
         + (f" ({engine.backend.name})" if args.engine == "flat" else "")),
        ("edits applied", metrics["edits_applied"]),
        ("dirty nodes total", metrics["dirty_nodes_total"]),
        ("batches", len(batches)),
        ("max dirty/batch", max(batches, default=0)),
    ]
    if args.engine == "flat":
        rounds = metrics["reconverge_rounds_per_batch"]
        rows += [
            ("reconverge rounds", sum(rounds)),
            ("compactions", metrics["compactions"]),
        ]
    print(format_table(("metric", "value"), rows, title="maintenance cost"))
    coreness = engine.coreness
    top = sorted(coreness, key=lambda u: (-coreness[u], u))[:args.top]
    print(format_table(
        ("node", "coreness"), [(u, coreness[u]) for u in top],
        title="top nodes (final)",
    ))
    if tracer is not None:
        from repro.telemetry import finish_run_telemetry

        finish_run_telemetry(tracer, args.trace_out)
    _print_telemetry(tracer, args.trace_out)
    return 0


def _cmd_datasets(_args: argparse.Namespace) -> int:
    from repro.datasets import PAPER_DATASETS

    rows = [
        (
            spec.name,
            spec.paper_name,
            int(spec.paper["num_nodes"]),
            int(spec.paper["kmax"]),
            spec.paper["tavg"],
        )
        for spec in PAPER_DATASETS
    ]
    print(format_table(
        ("name", "paper dataset", "paper |V|", "paper kmax", "paper tavg"),
        rows,
        title="registered datasets (synthetic stand-ins)",
    ))
    return 0


def _cmd_fingerprint(args: argparse.Namespace) -> int:
    from repro.analysis.fingerprint import core_fingerprint, render_fingerprint
    from repro.baselines.batagelj_zaversnik import batagelj_zaversnik

    graph = _load_graph(args)
    coreness = batagelj_zaversnik(graph)
    layout = core_fingerprint(graph, coreness, seed=args.seed)
    print(
        f"{graph.name or 'graph'}: {graph.num_nodes} nodes, "
        f"k_max={layout.max_coreness}"
    )
    print(render_fingerprint(layout, coreness,
                             width=args.width, height=args.height))
    return 0


_COMMANDS = {
    "decompose": _cmd_decompose,
    "stats": _cmd_stats,
    "table1": _cmd_table1,
    "churn": _cmd_churn,
    "datasets": _cmd_datasets,
    "fingerprint": _cmd_fingerprint,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
