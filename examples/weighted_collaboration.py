#!/usr/bin/env python3
"""Extension: weighted cores on a collaboration network.

Classic coreness treats a co-authorship once-off the same as a decade
of joint papers. The generalized cores of Batagelj & Zaveršnik (the
paper's reference [3]) weight each edge — here by collaboration
count — and the paper's distributed algorithm carries over unchanged
(the locality theorem only needs a monotone local property function).
This example contrasts the two rankings and shows the distributed
weighted protocol agreeing with sequential generalized peeling.

Run:  python examples/weighted_collaboration.py
"""

from repro.analysis.comparison import kendall_tau, top_k_jaccard
from repro.baselines import batagelj_zaversnik
from repro.datasets.families import collaboration_graph
from repro.generalized import run_distributed_weighted, weighted_core_levels
from repro.utils.rng import make_rng
from repro.utils.tables import format_table


def main() -> None:
    graph = collaboration_graph(
        num_authors=800, num_papers=700, max_team=10, seed=21
    )
    print(
        f"collaboration network: {graph.num_nodes} authors, "
        f"{graph.num_edges} co-author pairs"
    )

    # weight = number of joint papers, approximated by a repeat-draw
    rng = make_rng(5)
    weights = {}
    for u, v in graph.edges():
        key = (min(u, v), max(u, v))
        weights[key] = float(1 + min(rng.randrange(6), rng.randrange(6)))

    classic = batagelj_zaversnik(graph)
    sequential = weighted_core_levels(graph, weights)
    distributed = run_distributed_weighted(graph, weights, seed=3)
    assert distributed.levels == sequential
    print(
        "distributed weighted protocol == sequential generalized peeling "
        f"(converged in {distributed.stats.execution_time} rounds)\n"
    )

    classic_f = {u: float(k) for u, k in classic.items()}
    print(format_table(
        ("metric", "value"),
        [
            ("classic k_max", max(classic.values())),
            ("weighted level max", max(sequential.values())),
            ("Kendall tau (classic vs weighted)",
             round(kendall_tau(classic_f, sequential), 3)),
            ("top-20 overlap (Jaccard)",
             round(top_k_jaccard(classic_f, sequential, 20), 3)),
        ],
        title="classic vs weighted core rankings",
    ))
    print(
        "\nthe rankings correlate but disagree on the top authors: "
        "weighted cores reward strong repeated collaborations over "
        "many weak ones — exactly what the unweighted decomposition "
        "cannot see."
    )


if __name__ == "__main__":
    main()
