#!/usr/bin/env python3
"""One-to-one scenario: a live P2P overlay inspecting itself.

The paper's first motivation: "cores with larger k are known to be good
spreaders [Kitsak et al.], this information could be used at run-time
to optimize the diffusion of messages in epidemic protocols". This
example plays that scenario end to end:

1. build a social-overlay graph (each node is one host);
2. run the distributed protocol so every node learns its own coreness
   (no node ever sees the full graph — only its neighbours' estimates);
3. seed an SIR epidemic from the top-coreness nodes, and compare the
   outbreak size against top-degree and random seeding.

Run:  python examples/gossip_spreaders.py
"""

from repro import OneToOneConfig, run_one_to_one
from repro.analysis.spreading import spreading_power
from repro.datasets import load
from repro.utils.rng import make_rng
from repro.utils.tables import format_table


def main() -> None:
    overlay = load("slashdot", scale=0.5, seed=42)
    print(
        f"overlay: {overlay.num_nodes} peers, {overlay.num_edges} links "
        f"(slashdot-like social graph)"
    )

    # every peer runs Algorithm 1; the run-time cost is what a live
    # system would pay to learn its own core structure
    result = run_one_to_one(overlay, OneToOneConfig(seed=7))
    print(
        f"self-inspection finished in {result.stats.execution_time} rounds, "
        f"{result.stats.messages_avg:.1f} messages/peer on average\n"
    )

    num_seeds = 5
    by_coreness = result.top_spreaders(num_seeds)
    by_degree = sorted(
        overlay.nodes(), key=lambda u: (-overlay.degree(u), u)
    )[:num_seeds]
    rng = make_rng(99)
    random_seeds = rng.sample(sorted(overlay.nodes()), num_seeds)

    outbreaks = spreading_power(
        overlay,
        {
            "top coreness (paper's proposal)": by_coreness,
            "top degree": by_degree,
            "random": random_seeds,
        },
        infect_prob=0.04,
        trials=40,
        seed=3,
    )

    rows = [
        (strategy, round(size, 1), f"{100 * size / overlay.num_nodes:.1f}%")
        for strategy, size in sorted(
            outbreaks.items(), key=lambda item: -item[1]
        )
    ]
    print(format_table(
        ("seeding strategy", "mean outbreak", "of overlay"),
        rows,
        title=f"SIR epidemics from {num_seeds} seeds (40 trials)",
    ))

    best = max(outbreaks, key=outbreaks.get)
    print(f"\nbest strategy: {best}")
    print(
        "note: high-coreness seeds sit inside the dense nucleus, which is "
        "exactly why the paper wants coreness available at run time."
    )


if __name__ == "__main__":
    main()
