#!/usr/bin/env python3
"""Extension: tracking coreness in a churning overlay.

The one-to-one scenario is a *live* system — peers join, leave, and
rewire. Rather than re-running the full protocol after every change,
the streaming engine re-converges only the affected region (the
locality theorem bounds it). This example simulates a session of
overlay churn and reports how little work each event costs, verifying
against full recomputation as it goes.

Run:  python examples/live_overlay_churn.py
"""

import random
import time

from repro.datasets import load
from repro.sim.kernels import available_backends
from repro.streaming import DynamicKCore
from repro.utils.tables import format_table
from repro.workloads.churn import generate_churn_trace, replay_trace


def main() -> None:
    overlay = load("gnutella", scale=0.4, seed=42)
    engine = DynamicKCore(overlay)
    rng = random.Random(7)
    nodes = sorted(overlay.nodes())
    next_peer = max(nodes) + 1

    print(
        f"overlay: {overlay.num_nodes} peers, {overlay.num_edges} links, "
        f"k_max={max(engine.coreness.values())}\n"
    )

    events = []
    touched = []
    for step in range(120):
        roll = rng.random()
        if roll < 0.35:
            # new peer joins and connects to two random contacts
            contacts = rng.sample(sorted(engine.graph.nodes()), 2)
            engine.add_node(next_peer)
            total = 1
            for contact in contacts:
                engine.insert_edge(next_peer, contact)
                total += engine.touched_last_op
            events.append("join")
            touched.append(total)
            next_peer += 1
        elif roll < 0.55:
            # a peer leaves
            candidates = sorted(engine.graph.nodes())
            victim = candidates[rng.randrange(len(candidates))]
            engine.remove_node(victim)
            events.append("leave")
            touched.append(engine.touched_last_op)
        else:
            # rewiring: drop one link, add another
            edges = list(engine.graph.edges())
            u, v = edges[rng.randrange(len(edges))]
            engine.delete_edge(u, v)
            total = engine.touched_last_op
            peers = sorted(engine.graph.nodes())
            while True:
                a, b = rng.sample(peers, 2)
                if not engine.graph.has_edge(a, b):
                    engine.insert_edge(a, b)
                    break
            total += engine.touched_last_op
            events.append("rewire")
            touched.append(total)

        if step % 30 == 29:
            assert engine.verify(), "incremental state diverged!"

    by_kind: dict[str, list[int]] = {}
    for kind, count in zip(events, touched):
        by_kind.setdefault(kind, []).append(count)

    n = engine.graph.num_nodes
    rows = [
        (
            kind,
            len(counts),
            round(sum(counts) / len(counts), 1),
            max(counts),
            f"{100 * (sum(counts) / len(counts)) / n:.2f}%",
        )
        for kind, counts in sorted(by_kind.items())
    ]
    print(format_table(
        ("event", "count", "avg nodes touched", "max", "avg % of overlay"),
        rows,
        title="per-event maintenance cost over 120 churn events",
    ))
    print(
        f"\nfinal overlay: {n} peers, k_max="
        f"{max(engine.coreness.values())}; periodic full-recompute "
        "verification passed throughout."
    )

    # ------------------------------------------------------------------
    # object vs flat: the same steady-state churn trace through both
    # maintenance engines. The object engine replays per event; the
    # flat engine absorbs 32-event batches through the dynamic-CSR
    # kernels (the configuration the streaming benchmark records).
    # ------------------------------------------------------------------
    peers = overlay.num_nodes
    trace = generate_churn_trace(
        overlay,
        duration=(60.0 * 600) / (2.0 * peers),
        join_rate=peers / 60.0,
        mean_session=60.0,
        rewire_rate=0.0,
        seed=11,
    )
    lanes = [("object (per-edit)", {"engine": "object"})]
    for backend in available_backends():
        lanes.append((
            f"flat-{backend} (batch=32)",
            {"engine": "flat", "backend": backend, "batch_size": 32},
        ))
    rows = []
    final = None
    for label, kwargs in lanes:
        start = time.perf_counter()
        replayed = replay_trace(trace, **kwargs)
        secs = time.perf_counter() - start
        rows.append((
            label,
            len(trace),
            f"{len(trace) / secs:,.0f}",
            replayed.metrics["dirty_nodes_total"],
        ))
        if final is None:
            final = dict(replayed.coreness)
        else:
            assert dict(replayed.coreness) == final, (
                f"{label} diverged from the object engine"
            )
    print()
    print(format_table(
        ("engine", "events", "updates/sec", "nodes re-evaluated"),
        rows,
        title=f"replaying {len(trace)} churn events, all engines agree",
    ))


if __name__ == "__main__":
    main()
