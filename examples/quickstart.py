#!/usr/bin/env python3
"""Quickstart: compute a k-core decomposition three ways.

Builds the paper's Figure-1-style graph, decomposes it with the
distributed one-to-one protocol (Algorithm 1), the distributed
one-to-many protocol (Algorithms 3-5) and the sequential
Batagelj-Zaversnik baseline, and shows that all three agree.

Run:  python examples/quickstart.py
"""

from repro import OneToManyConfig, OneToOneConfig, decompose
from repro.graph.generators import figure1_example
from repro.utils.tables import format_table


def main() -> None:
    graph = figure1_example()
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    distributed = decompose(graph, "one-to-one", seed=1)
    hosted = decompose(graph, "one-to-many", num_hosts=3, seed=1)
    baseline = decompose(graph, "bz")

    assert distributed.coreness == baseline.coreness == hosted.coreness
    print("one-to-one == one-to-many == Batagelj-Zaversnik: OK\n")

    rows = [
        (node, graph.degree(node), baseline.coreness[node])
        for node in sorted(graph.nodes())
    ]
    print(format_table(("node", "degree", "coreness"), rows,
                       title="decomposition"))

    print()
    print(format_table(
        ("k", "k-shell size", "k-core size"),
        [
            (k, len(baseline.shell(k)), len(baseline.core(k)))
            for k in range(1, baseline.max_coreness + 1)
        ],
        title="concentric cores (Figure 1)",
    ))

    print()
    print("distributed run:", distributed.stats.summary())
    print(
        "one-to-many run:",
        hosted.stats.summary(),
        f"| estimates shipped across hosts: "
        f"{hosted.stats.extra['estimates_sent_total']}",
    )


if __name__ == "__main__":
    main()
