#!/usr/bin/env python3
"""One-to-many scenario: decomposing a graph too large for one machine.

The paper's second motivation: a graph (Facebook-scale in their
example) is sharded over a cluster; each host owns a slice of nodes and
runs Algorithm 3 on their behalf, exchanging only boundary estimates.
This example shards a web-like graph over a varying number of hosts and
reports what a cluster operator would care about:

* the answer never changes (any host count, any placement, either
  engine);
* the per-node communication overhead for both media (Figure 5);
* the wall-clock of the object engine vs the sharded CSR fast path
  (``engine="flat"`` — the same run bit-for-bit, just faster);
* how placement policy changes the cut and therefore the traffic.

Run:  python examples/partitioned_large_graph.py
"""

import time

from repro import OneToManyConfig, assign, decompose, run_one_to_many
from repro.datasets import load
from repro.utils.tables import format_table


def main() -> None:
    graph = load("web-berkstan", scale=0.6, seed=11)
    print(
        f"web crawl stand-in: {graph.num_nodes} pages, "
        f"{graph.num_edges} links\n"
    )

    reference = decompose(graph, "bz")

    # -- host count sweep (Figure 5's experiment, both media), timing
    # the object engine against the sharded flat engine at each point
    rows = []
    for hosts in (2, 8, 32, 128):
        per_medium = {}
        seconds = {}
        for engine in ("round", "flat"):
            start = time.perf_counter()
            for medium in ("broadcast", "p2p"):
                run = run_one_to_many(
                    graph,
                    OneToManyConfig(
                        num_hosts=hosts,
                        communication=medium,
                        engine=engine,
                        seed=5,
                    ),
                )
                assert run.coreness == reference.coreness
                if engine == "flat":
                    # the flat engine replays the object run exactly —
                    # same rounds, same Figure-5 overhead
                    assert (
                        run.stats.extra == per_medium[medium].stats.extra
                    )
                else:
                    per_medium[medium] = run
            seconds[engine] = time.perf_counter() - start
        rows.append(
            (
                hosts,
                per_medium["broadcast"].stats.execution_time,
                round(
                    per_medium["broadcast"].stats.extra[
                        "estimates_sent_per_node"
                    ],
                    2,
                ),
                round(
                    per_medium["p2p"].stats.extra["estimates_sent_per_node"],
                    2,
                ),
                round(seconds["round"], 2),
                round(seconds["flat"], 2),
                round(seconds["round"] / seconds["flat"], 2),
            )
        )
    print(format_table(
        ("hosts", "rounds", "overhead (broadcast)", "overhead (p2p)",
         "object s", "flat s", "speedup"),
        rows,
        title="host count sweep — overhead = estimates sent per node",
    ))
    print(
        "\nbroadcast stays flat and tiny (one message per host per round "
        "carries everything); p2p pays per neighbouring host. The flat "
        "engine returns identical results and overheads per seed.\n"
    )

    # -- placement policies -------------------------------------------
    hosts = 16
    rows = []
    for policy in ("modulo", "block", "random", "bfs"):
        assignment = assign(graph, hosts, policy=policy, seed=1)
        run = run_one_to_many(
            graph,
            OneToManyConfig(num_hosts=hosts, communication="p2p", seed=5),
            assignment=assignment,
        )
        assert run.coreness == reference.coreness
        rows.append(
            (
                policy,
                assignment.cut_edges(graph),
                round(run.stats.extra["estimates_sent_per_node"], 2),
            )
        )
    print(format_table(
        ("placement policy", "cut edges", "overhead (p2p)"),
        rows,
        title=f"placement matters at {hosts} hosts",
    ))
    print(
        "\nthe paper ships with modulo (simple, balanced); a BFS-chunk "
        "placement keeps neighbourhoods together and cuts the traffic."
    )


if __name__ == "__main__":
    main()
