#!/usr/bin/env python3
"""Termination in practice: exact detection vs fixed-round budgets.

Section 3.3 sketches three ways to stop the protocol; Section 5.1's
error analysis (Figure 4) shows why the cheapest one — just stop after
R rounds — is often good enough: "the maximum error is at most equal
to 1 by cycle 22" on every dataset. This example quantifies that
trade-off on a road-network stand-in (one of the *slow* graphs, so
approximation is actually interesting) and then shows both exact
mechanisms (centralized master, decentralized gossip) paying their
detection overhead.

Run:  python examples/approximate_fixed_rounds.py
"""

from repro import OneToOneConfig, decompose
from repro.core.termination import (
    run_fixed_rounds,
    run_with_centralized_termination,
    run_with_gossip_termination,
)
from repro.datasets import load
from repro.utils.tables import format_table


def main() -> None:
    graph = load("roadnet", scale=1.0, seed=11)
    truth = decompose(graph, "bz").coreness
    full = decompose(graph, "one-to-one", seed=3)
    print(
        f"road network stand-in: {graph.num_nodes} junctions; full "
        f"convergence takes {full.stats.execution_time} rounds\n"
    )

    # -- fixed-round budgets ------------------------------------------
    # budgets run on the flat CSR fast path (engine="flat"): under
    # peersim mode it replays the object engine's randomized activation
    # order RNG-identically, so the truncated estimates per budget are
    # bit-for-bit the ones the object engine would produce — checked
    # below for one budget.
    rows = []
    for budget in (2, 5, 10, 20, 40, 80):
        approx = run_fixed_rounds(
            graph, rounds=budget, config=OneToOneConfig(seed=3, engine="flat")
        )
        assert approx.stats.rounds_executed <= budget
        errors = [approx.coreness[u] - truth[u] for u in truth]
        wrong = sum(1 for e in errors if e)
        rows.append(
            (
                budget,
                max(errors),
                round(sum(errors) / len(errors), 4),
                f"{100 * wrong / len(errors):.2f}%",
            )
        )
    print(format_table(
        ("round budget", "max error", "avg error", "nodes wrong"),
        rows,
        title="fixed-round termination: accuracy vs budget (flat engine)",
    ))
    check = run_fixed_rounds(graph, rounds=10, config=OneToOneConfig(seed=3))
    flat10 = run_fixed_rounds(
        graph, rounds=10, config=OneToOneConfig(seed=3, engine="flat")
    )
    assert flat10.coreness == check.coreness
    assert flat10.stats.sends_per_round == check.stats.sends_per_round
    print("flat truncated run is bit-identical to the object engine: OK\n")
    print(
        "\nestimates only ever over-approximate (safety, Theorem 2), so "
        "an early stop is a usable upper bound — by ~20 rounds the map "
        "is essentially correct long before full convergence.\n"
    )

    # -- exact mechanisms ----------------------------------------------
    central = run_with_centralized_termination(graph, OneToOneConfig(seed=3))
    gossip = run_with_gossip_termination(
        graph, threshold=12, config=OneToOneConfig(seed=3)
    )
    assert central.result.coreness == truth
    assert gossip.result.coreness == truth
    rows = [
        (
            "centralized master",
            central.detected_round,
            central.control_messages,
        ),
        (
            "gossip max-aggregation (threshold 12)",
            gossip.detected_round,
            gossip.control_messages,
        ),
    ]
    print(format_table(
        ("mechanism", "declared at round", "control messages"),
        rows,
        title="exact termination detection",
    ))


if __name__ == "__main__":
    main()
